#include "csp/solver.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_set>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::csp {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * One restart's depth-first search over the solver's persistent
 * engine. The engine arrives at the root fixpoint (base problem
 * plus any pushed extras); every decision opens a trail level and
 * backtracking pops it. On success the decision levels are left
 * open so the caller can extract before popping back to the root.
 */
class Dfs
{
  public:
    Dfs(const Csp &csp, PropagationEngine &engine, Rng &rng,
        const SolverConfig &config, SolverStats &stats,
        Clock::time_point deadline)
        : csp_(csp), engine_(engine), rng_(rng), config_(config),
          stats_(stats), deadline_(deadline)
    {
    }

    std::optional<Assignment>
    run()
    {
        backtracks_left_ = config_.max_backtracks_per_restart;
        if (recurse())
            return engine_.extract();
        return std::nullopt;
    }

    /** The wall-clock deadline expired during the search. */
    bool deadline_hit() const { return deadline_hit_; }

  private:
    const Csp &csp_;
    PropagationEngine &engine_;
    Rng &rng_;
    const SolverConfig &config_;
    SolverStats &stats_;
    Clock::time_point deadline_;
    int backtracks_left_ = 0;
    bool deadline_hit_ = false;
    // Scratch for pick_branch_var's tie-break list; consumed before
    // the search recurses, so one buffer serves every depth and the
    // per-decision allocation disappears.
    std::vector<VarId> open_;

    VarId
    pick_branch_var()
    {
        // Most-constrained unassigned tunable first (smallest
        // domain, ties broken randomly). Value choice stays fully
        // random, which provides the sample diversity RandSAT
        // needs; ordering by domain size surfaces conflicts early.
        std::vector<VarId> &open = open_;
        open.clear();
        if (config_.branch_tunables_first) {
            int64_t best = std::numeric_limits<int64_t>::max();
            for (VarId v : csp_.tunable_vars()) {
                const Domain &d = engine_.domain(v);
                if (d.is_singleton())
                    continue;
                if (d.size() < best) {
                    best = d.size();
                    open.clear();
                }
                if (d.size() == best)
                    open.push_back(v);
            }
            if (!open.empty())
                return open[rng_.index(open.size())];
        }
        VarId best = -1;
        int64_t best_size = 0;
        for (size_t i = 0; i < csp_.num_vars(); ++i) {
            const Domain &d = engine_.domain(static_cast<VarId>(i));
            if (d.is_singleton())
                continue;
            if (best < 0 || d.size() < best_size) {
                best = static_cast<VarId>(i);
                best_size = d.size();
            }
        }
        return best;
    }

    std::vector<int64_t>
    candidate_values(const Domain &d)
    {
        std::vector<int64_t> vals;
        if (d.is_explicit() || d.size() <= 256) {
            vals = d.values();
            rng_.shuffle(vals);
        } else {
            // Huge interval: sample a handful of representative
            // values. Such variables are normally fixed by
            // propagation; this is a safety net.
            vals.push_back(d.min());
            vals.push_back(d.max());
            for (int i = 0; i < 6; ++i)
                vals.push_back(rng_.uniform_int(d.min(), d.max()));
            std::sort(vals.begin(), vals.end());
            vals.erase(std::unique(vals.begin(), vals.end()),
                       vals.end());
            rng_.shuffle(vals);
        }
        return vals;
    }

    bool
    recurse()
    {
        VarId var = pick_branch_var();
        if (var < 0)
            return engine_.all_assigned();

        for (int64_t value : candidate_values(engine_.domain(var))) {
            // Deadline check before every propagation step, so the
            // solve overshoots the deadline by at most one step.
            if (deadline_ != Clock::time_point::max() &&
                Clock::now() >= deadline_) {
                deadline_hit_ = true;
                return false;
            }
            engine_.push_level();
            if (engine_.assign_and_propagate(var, value)) {
                if (recurse())
                    return true; // levels stay open for extract()
            }
            if (deadline_hit_)
                return false; // caller pops all open levels at once
            engine_.pop_level();
            ++stats_.backtracks;
            if (--backtracks_left_ <= 0)
                return false;
        }
        return false;
    }
};

} // namespace

const char *
solve_failure_name(SolveFailure failure)
{
    switch (failure) {
      case SolveFailure::kNone: return "none";
      case SolveFailure::kUnsat: return "unsat";
      case SolveFailure::kBudget: return "budget";
      case SolveFailure::kDeadline: return "deadline";
    }
    return "?";
}

SolverStats &
SolverStats::operator+=(const SolverStats &other)
{
    solve_calls += other.solve_calls;
    solutions += other.solutions;
    backtracks += other.backtracks;
    restarts += other.restarts;
    failures += other.failures;
    unsat += other.unsat;
    budget_exhausted += other.budget_exhausted;
    deadline_aborts += other.deadline_aborts;
    propagations += other.propagations;
    revisions += other.revisions;
    unsat_memo_hits += other.unsat_memo_hits;
    return *this;
}

RandSatSolver::RandSatSolver(const Csp &csp, SolverConfig config)
    : csp_(csp), config_(config), engine_(csp)
{
    // Compute the base problem's root fixpoint once; every solve
    // call starts from this state. Its engine counters are absorbed
    // into the sync baseline rather than stats_: the fixpoint is
    // per-problem setup, not per-solve work, and excluding it keeps
    // aggregate stats worker-count invariant when SampleBatch
    // creates one solver per worker.
    root_ok_ = engine_.propagate();
    engine_synced_ = engine_.stats();
}

void
RandSatSolver::sync_engine_stats()
{
    const PropagationEngine::Stats &now = engine_.stats();
    stats_.propagations += now.propagations - engine_synced_.propagations;
    stats_.revisions += now.revisions - engine_synced_.revisions;
    engine_synced_ = now;
}

std::optional<Assignment>
RandSatSolver::search(Rng &rng, const std::vector<Constraint> &extra)
{
    HERON_TRACE_SCOPE("csp/solve");
    ++stats_.solve_calls;
    int64_t backtracks_before = stats_.backtracks;
    int64_t restarts_before = stats_.restarts;
    // Publish the outcome to the process-wide metrics registry as
    // one batch per solve call so the DFS inner loop stays free of
    // atomic traffic.
    auto publish = [&]() {
        HERON_COUNTER_INC("csp.solve_calls");
        HERON_COUNTER_ADD("csp.backtracks",
                          stats_.backtracks - backtracks_before);
        HERON_COUNTER_ADD("csp.restarts",
                          stats_.restarts - restarts_before);
        switch (last_failure_) {
          case SolveFailure::kNone:
            HERON_COUNTER_INC("csp.solutions");
            break;
          case SolveFailure::kUnsat:
            HERON_COUNTER_INC("csp.unsat");
            break;
          case SolveFailure::kBudget:
            HERON_COUNTER_INC("csp.budget_exhausted");
            break;
          case SolveFailure::kDeadline:
            HERON_COUNTER_INC("csp.deadline_aborts");
            break;
        }
        sync_engine_stats();
    };
    auto fail_unsat = [&]() {
        ++stats_.failures;
        ++stats_.unsat;
        last_failure_ = SolveFailure::kUnsat;
        publish();
        return std::nullopt;
    };

    if (!root_ok_)
        return fail_unsat();

    // UNSAT memo: answer recently-disproven extra sets without
    // touching the engine. Memo hits consume no RNG, matching the
    // root-conflict path they cache.
    uint64_t memo_key = 0;
    std::vector<uint64_t> memo_sig;
    const bool use_memo = config_.unsat_memo && !extra.empty();
    if (use_memo) {
        memo_sig.reserve(extra.size());
        for (const auto &c : extra)
            memo_sig.push_back(c.signature());
        std::sort(memo_sig.begin(), memo_sig.end());
        memo_key = hash_u64(memo_sig.size());
        for (uint64_t s : memo_sig)
            memo_key = hash_combine(memo_key, s);
        auto it = unsat_memo_.find(memo_key);
        if (it != unsat_memo_.end() && it->second == memo_sig) {
            ++stats_.unsat_memo_hits;
            HERON_COUNTER_INC("csp.unsat_memo_hits");
            return fail_unsat();
        }
    }

    const bool push = !extra.empty();
    if (push && !engine_.push_extras(extra)) {
        // Root propagation disproved the extras: a proof, so it is
        // safe to memoize (budget/deadline failures are not).
        engine_.pop_extras();
        if (use_memo) {
            if (unsat_memo_.size() >= kUnsatMemoCap)
                unsat_memo_.clear();
            unsat_memo_.emplace(memo_key, std::move(memo_sig));
        }
        return fail_unsat();
    }

    const size_t base_depth = engine_.depth();
    auto finish = [&](std::optional<Assignment> result) {
        engine_.pop_to_depth(base_depth);
        if (push)
            engine_.pop_extras();
        publish();
        return result;
    };

    Clock::time_point deadline = Clock::time_point::max();
    if (config_.deadline_ms > 0.0)
        deadline = Clock::now() +
                   std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double, std::milli>(
                           config_.deadline_ms));
    for (int restart = 0; restart < config_.max_restarts; ++restart) {
        if (restart > 0)
            ++stats_.restarts;
        Dfs dfs(csp_, engine_, rng, config_, stats_, deadline);
        auto result = dfs.run();
        if (result) {
            ++stats_.solutions;
            last_failure_ = SolveFailure::kNone;
            return finish(std::move(result));
        }
        // Back to the root fixpoint for the next restart (replaces
        // the historical engine reconstruction).
        engine_.pop_to_depth(base_depth);
        if (dfs.deadline_hit()) {
            ++stats_.failures;
            ++stats_.deadline_aborts;
            last_failure_ = SolveFailure::kDeadline;
            return finish(std::nullopt);
        }
    }
    ++stats_.failures;
    ++stats_.budget_exhausted;
    last_failure_ = SolveFailure::kBudget;
    return finish(std::nullopt);
}

std::optional<Assignment>
RandSatSolver::solve_one(Rng &rng, const std::vector<Constraint> &extra)
{
    auto result = search(rng, extra);
    if (result) {
        HERON_CHECK(csp_.valid(*result))
            << "solver produced an invalid assignment";
        for (const auto &c : extra)
            HERON_CHECK(csp_.satisfies(c, *result))
                << "solver violated an extra constraint";
    }
    return result;
}

std::vector<Assignment>
RandSatSolver::solve_n(Rng &rng, int n,
                       const std::vector<Constraint> &extra)
{
    std::vector<Assignment> results;
    std::unordered_set<uint64_t> seen;
    // A few extra attempts absorb duplicate draws in tight spaces.
    int attempts = n + std::max(4, n / 2);
    for (int i = 0; i < attempts && static_cast<int>(results.size()) < n;
         ++i) {
        auto a = solve_one(rng, extra);
        if (!a)
            break; // budget exhausted; subproblem likely too tight
        uint64_t h = assignment_hash(*a);
        if (seen.insert(h).second)
            results.push_back(std::move(*a));
    }
    return results;
}

bool
RandSatSolver::feasible(Rng &rng, const std::vector<Constraint> &extra)
{
    return search(rng, extra).has_value();
}

} // namespace heron::csp
