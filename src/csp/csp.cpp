#include "csp/csp.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"

namespace heron::csp {

const char *
constraint_kind_name(ConstraintKind kind)
{
    switch (kind) {
      case ConstraintKind::kProd: return "PROD";
      case ConstraintKind::kSum: return "SUM";
      case ConstraintKind::kEq: return "EQ";
      case ConstraintKind::kLe: return "LE";
      case ConstraintKind::kIn: return "IN";
      case ConstraintKind::kSelect: return "SELECT";
    }
    return "?";
}

uint64_t
assignment_hash(const Assignment &a)
{
    uint64_t h = 0x12345678;
    for (int64_t v : a)
        h = hash_combine(h, static_cast<uint64_t>(v));
    return h;
}

uint64_t
Constraint::signature() const
{
    uint64_t h = hash_u64(static_cast<uint64_t>(kind) + 1);
    h = hash_combine(h, static_cast<uint64_t>(result));
    h = hash_combine(h, operands.size());
    for (VarId v : operands)
        h = hash_combine(h, static_cast<uint64_t>(v));
    h = hash_combine(h, static_cast<uint64_t>(selector));
    h = hash_combine(h, constants.size());
    for (int64_t c : constants)
        h = hash_combine(h, static_cast<uint64_t>(c));
    return h;
}

std::string
Constraint::to_string(const Csp &csp) const
{
    std::ostringstream out;
    out << constraint_kind_name(kind) << "(";
    out << csp.var(result).name;
    switch (kind) {
      case ConstraintKind::kProd:
      case ConstraintKind::kSum:
        out << ", [";
        for (size_t i = 0; i < operands.size(); ++i)
            out << (i ? ", " : "") << csp.var(operands[i]).name;
        out << "]";
        break;
      case ConstraintKind::kEq:
      case ConstraintKind::kLe:
        out << ", " << csp.var(operands[0]).name;
        break;
      case ConstraintKind::kIn:
        out << ", {";
        for (size_t i = 0; i < constants.size(); ++i)
            out << (i ? ", " : "") << constants[i];
        out << "}";
        break;
      case ConstraintKind::kSelect:
        out << ", " << csp.var(selector).name << ", [";
        for (size_t i = 0; i < operands.size(); ++i)
            out << (i ? ", " : "") << csp.var(operands[i]).name;
        out << "]";
        break;
    }
    out << ")";
    if (!note.empty())
        out << "  # " << note;
    return out.str();
}

VarId
Csp::add_var(const std::string &name, Domain initial, bool tunable)
{
    HERON_CHECK(by_name_.find(name) == by_name_.end())
        << "duplicate variable name: " << name;
    VarId id = static_cast<VarId>(vars_.size());
    vars_.push_back(VarInfo{name, std::move(initial), tunable});
    by_name_.emplace(name, id);
    if (tunable)
        tunables_.push_back(id);
    return id;
}

VarId
Csp::add_const(int64_t value)
{
    auto it = const_cache_.find(value);
    if (it != const_cache_.end())
        return it->second;
    std::string name = "const." + std::to_string(value);
    // Name may clash if users made a var of this name; disambiguate.
    while (by_name_.count(name))
        name += "'";
    VarId id = add_var(name, Domain::singleton(value), false);
    const_cache_.emplace(value, id);
    return id;
}

void
Csp::add_prod(VarId v, std::vector<VarId> operands, std::string note)
{
    HERON_CHECK(!operands.empty());
    Constraint c;
    c.kind = ConstraintKind::kProd;
    c.result = v;
    c.operands = std::move(operands);
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_sum(VarId v, std::vector<VarId> operands, std::string note)
{
    HERON_CHECK(!operands.empty());
    Constraint c;
    c.kind = ConstraintKind::kSum;
    c.result = v;
    c.operands = std::move(operands);
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_eq(VarId v1, VarId v2, std::string note)
{
    Constraint c;
    c.kind = ConstraintKind::kEq;
    c.result = v1;
    c.operands = {v2};
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_le(VarId v1, VarId v2, std::string note)
{
    Constraint c;
    c.kind = ConstraintKind::kLe;
    c.result = v1;
    c.operands = {v2};
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_in(VarId v, std::vector<int64_t> constants, std::string note)
{
    HERON_CHECK(!constants.empty());
    Constraint c;
    c.kind = ConstraintKind::kIn;
    c.result = v;
    c.constants = std::move(constants);
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_select(VarId v, VarId u, std::vector<VarId> operands,
                std::string note)
{
    HERON_CHECK(!operands.empty());
    Constraint c;
    c.kind = ConstraintKind::kSelect;
    c.result = v;
    c.selector = u;
    c.operands = std::move(operands);
    c.note = std::move(note);
    constraints_.push_back(std::move(c));
}

void
Csp::add_constraint(Constraint c)
{
    constraints_.push_back(std::move(c));
}

VarId
Csp::find_var(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? -1 : it->second;
}

VarId
Csp::var_id(const std::string &name) const
{
    VarId id = find_var(name);
    HERON_CHECK_GE(id, 0) << "unknown variable: " << name;
    return id;
}

bool
Csp::satisfies(const Constraint &c, const Assignment &a) const
{
    auto val = [&](VarId id) { return a[static_cast<size_t>(id)]; };
    switch (c.kind) {
      case ConstraintKind::kProd: {
        int64_t prod = 1;
        for (VarId op : c.operands)
            prod = checked_mul(prod, val(op));
        return val(c.result) == prod;
      }
      case ConstraintKind::kSum: {
        int64_t sum = 0;
        for (VarId op : c.operands)
            sum += val(op);
        return val(c.result) == sum;
      }
      case ConstraintKind::kEq:
        return val(c.result) == val(c.operands[0]);
      case ConstraintKind::kLe:
        return val(c.result) <= val(c.operands[0]);
      case ConstraintKind::kIn:
        return std::find(c.constants.begin(), c.constants.end(),
                         val(c.result)) != c.constants.end();
      case ConstraintKind::kSelect: {
        int64_t u = val(c.selector);
        if (u < 0 || u >= static_cast<int64_t>(c.operands.size()))
            return false;
        return val(c.result) == val(c.operands[static_cast<size_t>(u)]);
      }
    }
    return false;
}

int
Csp::count_violations(const Assignment &a) const
{
    HERON_CHECK_EQ(a.size(), vars_.size());
    int violations = 0;
    for (const auto &c : constraints_)
        if (!satisfies(c, a))
            ++violations;
    // Domain membership is part of validity as well.
    for (size_t i = 0; i < vars_.size(); ++i)
        if (!vars_[i].initial.contains(a[i]))
            ++violations;
    return violations;
}

bool
Csp::valid(const Assignment &a) const
{
    return count_violations(a) == 0;
}

std::string
Csp::to_string() const
{
    std::ostringstream out;
    out << "CSP with " << vars_.size() << " variables, "
        << constraints_.size() << " constraints\n";
    for (size_t i = 0; i < vars_.size(); ++i) {
        out << "  " << (vars_[i].tunable ? "[T] " : "    ")
            << vars_[i].name << " in " << vars_[i].initial.to_string()
            << "\n";
    }
    for (const auto &c : constraints_)
        out << "  " << c.to_string(*this) << "\n";
    return out.str();
}

} // namespace heron::csp
