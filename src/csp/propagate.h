/**
 * @file
 * Constraint propagation engine.
 *
 * Runs per-constraint-type filtering to a fixpoint over a working
 * copy of all variable domains. Used by the RandSAT solver after
 * every branching decision and by CGA to pre-prune offspring CSPs.
 *
 * Backtracking is trail-based: every domain mutation made inside a
 * push_level() scope records the overwritten domain on an undo
 * trail, and pop_level() replays the trail backwards. This replaces
 * the historical full-domain-vector snapshot per decision, which
 * dominated solve time on Heron-scale problems (hundreds of
 * variables). Propagation is watcher-driven throughout: a domain
 * change only wakes the constraints watching that variable.
 *
 * Extra constraints (CGA crossover IN sets) are pushed and popped
 * dynamically with push_extras()/pop_extras(), so one engine — and
 * its already-computed base-problem fixpoint — is reused across
 * thousands of offspring subproblem solves.
 */
#ifndef HERON_CSP_PROPAGATE_H
#define HERON_CSP_PROPAGATE_H

#include <cstdint>
#include <vector>

#include "csp/csp.h"

namespace heron::csp {

/**
 * Mutable propagation state: the current domains of every variable
 * plus the machinery to reach a propagation fixpoint.
 *
 * The engine owns a combined view of the base problem's constraints
 * and an optional set of extra constraints (CGA crossover adds IN
 * constraints without copying the whole problem).
 */
class PropagationEngine
{
  public:
    /** Propagation work counters (monotonic over engine lifetime). */
    struct Stats {
        /** propagate() fixpoint computations. */
        int64_t propagations = 0;
        /** Individual constraint revise() executions. */
        int64_t revisions = 0;
    };

    /**
     * Legacy one-shot construction: engine over @p csp plus @p extra
     * constraints, with every constraint queued for the first
     * propagate() call. Both must outlive the engine.
     */
    PropagationEngine(const Csp &csp,
                      const std::vector<Constraint> &extra);

    /**
     * Engine over just the base problem, every base constraint
     * queued. Use push_extras() to add subproblem constraints later.
     */
    explicit PropagationEngine(const Csp &csp);

    /** Current domain of a variable. */
    const Domain &domain(VarId id) const
    {
        return domains_[static_cast<size_t>(id)];
    }

    /** All current domains (for snapshot/restore by legacy users). */
    const std::vector<Domain> &domains() const { return domains_; }

    /**
     * Restore a previously captured domain snapshot. Legacy
     * API for snapshot-style backtracking; must not be called with
     * open trail levels (trail and snapshot styles don't mix).
     */
    void restore(std::vector<Domain> snapshot);

    /**
     * Mark a variable changed so its constraints are reconsidered by
     * the next propagate() call.
     */
    void touch(VarId id);

    // ---- Trail-based backtracking -------------------------------

    /** Open an undo scope; mutations after this call are recorded. */
    void push_level();

    /** Undo every mutation since the matching push_level(). */
    void pop_level();

    /** Number of open trail levels (extras scope included). */
    size_t depth() const { return level_marks_.size(); }

    /** pop_level() until depth() == @p depth. */
    void pop_to_depth(size_t depth);

    /**
     * Register @p extra constraints on top of the base problem,
     * open an undo scope for their domain effects, queue them, and
     * propagate. Only valid at depth() == 0 with no extras active;
     * @p extra must stay alive until pop_extras().
     * @return false if propagation wiped out a domain (the
     *         subproblem is unsatisfiable); the engine stays in the
     *         conflicting state until pop_extras().
     */
    bool push_extras(const std::vector<Constraint> &extra);

    /**
     * Undo the extras' domain effects and unregister them. All
     * decision levels pushed above the extras must be popped first.
     */
    void pop_extras();

    /** True while an extras set is registered. */
    bool has_extras() const { return has_extras_; }

    // ---- Propagation --------------------------------------------

    /**
     * Run propagation to a fixpoint.
     * @return false if some domain became empty (conflict).
     */
    bool propagate();

    /**
     * Assign a value and propagate.
     * @return false on conflict.
     */
    bool assign_and_propagate(VarId id, int64_t value);

    /** True when all variables are singletons. */
    bool all_assigned() const;

    /** Extract the assignment; requires all_assigned(). */
    Assignment extract() const;

    /** Number of constraints (base + extra). */
    size_t num_constraints() const { return all_constraints_.size(); }

    /** Propagation work counters. */
    const Stats &stats() const { return stats_; }

  private:
    /** One overwritten domain awaiting undo. */
    struct TrailEntry {
        VarId var;
        Domain saved;
    };

    const Csp &csp_;
    std::vector<const Constraint *> all_constraints_;
    std::vector<Domain> domains_;
    // Flat bound caches mirroring domains_ (empty <=> min > max).
    // The arithmetic propagators only need bounds, and reading two
    // flat arrays beats chasing into Domain's heap-backed value
    // sets; every domain mutation refreshes the cache.
    std::vector<int64_t> var_min_;
    std::vector<int64_t> var_max_;
    // Subtree entailment: when every variable a constraint can
    // filter is fixed (and the constraint holds), further revisions
    // are no-ops for as long as the trail level that was current at
    // discovery stays open. entail_depth_ records that depth and
    // entail_token_ the level's identity token (the epoch value at
    // its push), so stale marks from a popped level invalidate
    // themselves — no cleanup on pop. kPermanentEntailed is the IN
    // constraints' stronger mark: once intersect_values has been
    // applied the result domain only ever shrinks (backtracking
    // never climbs above a post-application state), so the filtering
    // stays a no-op for the constraint's registered lifetime.
    static constexpr uint32_t kNotEntailed = 0xffffffffu;
    static constexpr uint32_t kPermanentEntailed = 0xfffffffeu;
    std::vector<uint32_t> entail_depth_;
    std::vector<uint64_t> entail_token_;
    // Identity token of each open level (epoch at its push).
    std::vector<uint64_t> level_tokens_;
    // var -> constraint indices mentioning it, CSR layout for the
    // base problem (one contiguous array beats a vector-of-vectors
    // on the wake path); extras watch via a per-var overlay that is
    // only consulted while extras are registered.
    std::vector<int32_t> watch_flat_;
    std::vector<uint32_t> watch_off_; // size num_vars + 1
    std::vector<std::vector<int>> extra_watchers_;
    // Constraints whose filtering reads only variable bounds
    // (PROD/SUM/LE run off the flat bound caches): a mutation that
    // removes interior values without moving min/max cannot change
    // their filtering, so such wakes skip them.
    std::vector<bool> bounds_only_;
    // PROD/SUM constraints whose arithmetic provably cannot overflow
    // (folded over the variables' *initial* bounds, which every
    // reachable state shrinks): their revise loops use raw i64
    // multiplies/adds instead of checked_mul. Also implies PROD
    // operands are proven non-negative at registration.
    std::vector<bool> arith_safe_;
    std::vector<bool> queued_;
    // LIFO revision queue (depth-first wake order reaches the
    // fixpoint with the fewest revisions on the rule-emitted
    // constraint graphs; the fixpoint itself is order-independent).
    // queue_head_ exists so drain_queue() can also handle a
    // partially consumed queue.
    std::vector<int> queue_;
    size_t queue_head_ = 0;
    // Constraint currently being revised, when its filter is known
    // to exit at a local fixpoint (PROD/SUM iterate in place, the
    // binary kinds get there in one pass): mutations it makes to its
    // own watched variables don't re-enqueue it. -1 otherwise.
    int revising_ci_ = -1;
    Stats stats_;

    // Undo trail. level_marks_ holds the trail size at each
    // push_level(); saved_epoch_[v] == epoch_ means v's pre-mutation
    // domain is already on the trail for the current scope segment
    // (epoch_ is bumped on every push AND pop, so marks from closed
    // scopes can never be mistaken for current ones).
    //
    // Entries are pooled: trail_ only ever grows and trail_size_ is
    // the live prefix. Saving copy-assigns into a recycled entry and
    // popping copy-assigns back, so after warmup the save/undo cycle
    // performs no heap allocation (Domain's value-set buffers keep
    // their capacity on both sides).
    std::vector<TrailEntry> trail_;
    size_t trail_size_ = 0;
    std::vector<size_t> level_marks_;
    std::vector<uint64_t> saved_epoch_;
    uint64_t epoch_ = 1;

    // Extras bookkeeping for pop_extras().
    bool has_extras_ = false;
    size_t base_constraint_count_ = 0;
    std::vector<VarId> extra_watch_vars_;

    // Scratch buffers for revise_prod's bound caches and
    // prefix/suffix products, engine-owned so the hot path never
    // allocates.
    std::vector<int64_t> scratch_min_;
    std::vector<int64_t> scratch_max_;
    std::vector<int64_t> scratch_suf_min_;
    std::vector<int64_t> scratch_suf_max_;

    void build(const std::vector<Constraint> &extra);
    void reserve_scratch(size_t arity);
    /**
     * Overflow-safety check for PROD (see arith_safe_), folded over
     * the *current* flat bounds — valid for every state reachable
     * from the current one, since domains only shrink below it.
     */
    bool compute_arith_safe(const Constraint &c) const;
    /**
     * Recompute arith_safe_ from the current bounds. Called at
     * build, after a root-level propagation fixpoint (bounds just
     * shrank: more constraints qualify), and on restore() (bounds
     * may have widened: marks must be re-derived).
     */
    void refresh_arith_safety();
    /**
     * Wake @p id's watchers. @p bounds_changed false means the
     * mutation only removed interior values (min/max intact), which
     * lets bounds-only constraints sleep through it.
     */
    void enqueue_watchers(VarId id, bool bounds_changed = true);
    void drain_queue();

    /**
     * Record @p id's current domain on the trail if inside an undo
     * scope and not already recorded for the current segment.
     * @return true when a new trail entry was pushed.
     */
    bool save(VarId id);

    // Mutation helpers: every domain change flows through one of
    // these so the trail sees it. Each enqueues watchers on change.
    bool clamp(VarId id, int64_t lo, int64_t hi);
    bool try_assign(VarId id, int64_t value);
    void remove_value(VarId id, int64_t value);
    bool intersect_with(VarId id, const Domain &other);
    bool intersect_values_with(VarId id,
                               const std::vector<int64_t> &values);

    /** Re-read a variable's bounds into the flat caches. */
    void refresh_bounds(VarId id)
    {
        const Domain &d = domains_[static_cast<size_t>(id)];
        if (d.empty()) {
            var_min_[static_cast<size_t>(id)] = 1;
            var_max_[static_cast<size_t>(id)] = 0;
        } else {
            var_min_[static_cast<size_t>(id)] = d.min();
            var_max_[static_cast<size_t>(id)] = d.max();
        }
    }

    /** Mark @p ci entailed for the current subtree (see above). */
    void mark_entailed(int ci)
    {
        entail_depth_[static_cast<size_t>(ci)] =
            static_cast<uint32_t>(level_marks_.size());
        entail_token_[static_cast<size_t>(ci)] =
            level_marks_.empty() ? 0 : level_tokens_.back();
    }

    /** True when @p ci's filtering is currently a proven no-op. */
    bool constraint_entailed(int ci) const
    {
        uint32_t d = entail_depth_[static_cast<size_t>(ci)];
        if (d == kNotEntailed)
            return false; // common case: one load, one compare
        if (d == 0 || d == kPermanentEntailed)
            return true; // root entailment: valid until restore()
        return d <= level_marks_.size() &&
               level_tokens_[d - 1] ==
                   entail_token_[static_cast<size_t>(ci)];
    }

    /**
     * Apply one constraint's filtering. Returns false on wipeout;
     * touched variables are re-queued internally.
     */
    bool revise(const Constraint &c, int ci);

    bool revise_prod(const Constraint &c, int ci);
    /**
     * Shared PROD filter body. @tparam Safe selects raw i64
     * arithmetic (proven overflow-free and non-negative via
     * arith_safe_) over saturating checked_mul.
     */
    template <bool Safe>
    bool revise_prod_impl(const Constraint &c, int ci);
    bool revise_sum(const Constraint &c, int ci);
    bool revise_eq(const Constraint &c, int ci);
    bool revise_le(const Constraint &c, int ci);
    bool revise_in(const Constraint &c, int ci);
    bool revise_select(const Constraint &c, int ci);
};

} // namespace heron::csp

#endif // HERON_CSP_PROPAGATE_H
