/**
 * @file
 * Constraint propagation engine.
 *
 * Runs per-constraint-type filtering to a fixpoint over a working
 * copy of all variable domains. Used by the RandSAT solver after
 * every branching decision and by CGA to pre-prune offspring CSPs.
 */
#ifndef HERON_CSP_PROPAGATE_H
#define HERON_CSP_PROPAGATE_H

#include <vector>

#include "csp/csp.h"

namespace heron::csp {

/**
 * Mutable propagation state: the current domains of every variable
 * plus the machinery to reach a propagation fixpoint.
 *
 * The engine owns a combined view of the base problem's constraints
 * and an optional set of extra constraints (CGA crossover adds IN
 * constraints without copying the whole problem).
 */
class PropagationEngine
{
  public:
    /**
     * Build an engine over @p csp plus @p extra constraints. Both
     * must outlive the engine.
     */
    PropagationEngine(const Csp &csp,
                      const std::vector<Constraint> &extra);

    /** Engine over just the base problem. */
    explicit PropagationEngine(const Csp &csp);

    /** Current domain of a variable. */
    const Domain &domain(VarId id) const
    {
        return domains_[static_cast<size_t>(id)];
    }

    /** Mutable domain access; callers must requeue via touch(). */
    Domain &domain_mut(VarId id)
    {
        return domains_[static_cast<size_t>(id)];
    }

    /** All current domains (for snapshot/restore by the solver). */
    const std::vector<Domain> &domains() const { return domains_; }

    /** Restore a previously captured domain snapshot. */
    void restore(std::vector<Domain> snapshot);

    /**
     * Mark a variable changed so its constraints are reconsidered by
     * the next propagate() call.
     */
    void touch(VarId id);

    /**
     * Run propagation to a fixpoint.
     * @return false if some domain became empty (conflict).
     */
    bool propagate();

    /**
     * Assign a value and propagate.
     * @return false on conflict.
     */
    bool assign_and_propagate(VarId id, int64_t value);

    /** True when all variables are singletons. */
    bool all_assigned() const;

    /** Extract the assignment; requires all_assigned(). */
    Assignment extract() const;

    /** Number of constraints (base + extra). */
    size_t num_constraints() const { return all_constraints_.size(); }

  private:
    const Csp &csp_;
    std::vector<const Constraint *> all_constraints_;
    std::vector<Domain> domains_;
    // var -> constraint indices mentioning it
    std::vector<std::vector<int>> watchers_;
    std::vector<bool> queued_;
    std::vector<int> queue_;

    void build(const std::vector<Constraint> &extra);
    void enqueue_watchers(VarId id);
    /**
     * Apply one constraint's filtering. Returns false on wipeout;
     * touched variables are re-queued internally.
     */
    bool revise(const Constraint &c);

    bool revise_prod(const Constraint &c);
    bool revise_sum(const Constraint &c);
    bool revise_eq(const Constraint &c);
    bool revise_le(const Constraint &c);
    bool revise_in(const Constraint &c);
    bool revise_select(const Constraint &c);

    /** Shrink a domain to [lo, hi]; enqueue on change. */
    bool clamp(VarId id, int64_t lo, int64_t hi);
};

} // namespace heron::csp

#endif // HERON_CSP_PROPAGATE_H
