/**
 * @file
 * Finite domains for CSP variables.
 *
 * Two representations are supported behind one interface:
 *  - an explicit sorted value set (tile-size candidates, intrinsic
 *    shapes, boolean flags), used for variables the solver branches on;
 *  - a pure interval [lo, hi], used for derived variables (loop
 *    lengths, memory footprints) that propagation determines once the
 *    branching variables are assigned.
 */
#ifndef HERON_CSP_DOMAIN_H
#define HERON_CSP_DOMAIN_H

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "support/logging.h"

namespace heron::csp {

/** The set of values a CSP variable may still take. */
class Domain
{
  public:
    /** Empty domain (immediately failed). */
    Domain();

    /** Singleton domain {value}. */
    static Domain singleton(int64_t value);

    /** Interval domain [lo, hi]. */
    static Domain interval(int64_t lo, int64_t hi);

    /** Explicit set domain; input need not be sorted or unique. */
    static Domain of(std::vector<int64_t> values);

    // The simple accessors below are defined in the header: they
    // dominate the propagation inner loop (tens of millions of calls
    // per tuning round) and must inline.

    /** True when no value remains. */
    bool empty() const { return explicit_ ? set_.empty() : lo_ > hi_; }

    /** True when exactly one value remains. */
    bool is_singleton() const
    {
        return explicit_ ? set_.size() == 1 : lo_ == hi_;
    }

    /** True when the domain stores an explicit value set. */
    bool is_explicit() const { return explicit_; }

    /** Smallest remaining value. Requires non-empty. */
    int64_t min() const
    {
        HERON_CHECK(!empty());
        return explicit_ ? set_.front() : lo_;
    }

    /** Largest remaining value. Requires non-empty. */
    int64_t max() const
    {
        HERON_CHECK(!empty());
        return explicit_ ? set_.back() : hi_;
    }

    /** The single value of a singleton domain. */
    int64_t value() const
    {
        HERON_CHECK(is_singleton());
        return min();
    }

    /**
     * Number of remaining values. For interval domains this is
     * hi - lo + 1 (saturating).
     */
    int64_t size() const
    {
        if (explicit_)
            return static_cast<int64_t>(set_.size());
        if (lo_ > hi_)
            return 0;
        if (hi_ - lo_ == std::numeric_limits<int64_t>::max())
            return std::numeric_limits<int64_t>::max();
        return hi_ - lo_ + 1;
    }

    /** Membership test. */
    bool contains(int64_t v) const;

    /**
     * Shrink to [lo, hi]. @return true if the domain changed.
     */
    bool restrict_bounds(int64_t lo, int64_t hi);

    /** Shrink to the single value @p v. @return true if changed. */
    bool assign(int64_t v);

    /** Remove one value. @return true if changed. */
    bool remove(int64_t v);

    /**
     * Intersect with an explicit candidate list. Converts interval
     * domains to explicit form. @return true if changed.
     */
    bool intersect_values(const std::vector<int64_t> &values);

    /**
     * intersect_values for a list already sorted and unique:
     * in-place, allocation-free on explicit domains.
     */
    bool intersect_sorted(const std::vector<int64_t> &values);

    /** Intersect with another domain. @return true if changed. */
    bool intersect(const Domain &other);

    /**
     * Keep only values satisfying @p pred. Only valid on explicit
     * domains. @return true if changed.
     */
    bool filter(const std::function<bool(int64_t)> &pred);

    /**
     * Remaining values as a vector. Interval domains are
     * materialized; callers must ensure the interval is small.
     */
    std::vector<int64_t> values() const;

    /** Human-readable rendering ("{1,2,4}" or "[0..48152]"). */
    std::string to_string() const;

  private:
    bool explicit_;
    // Explicit representation (valid when explicit_).
    std::vector<int64_t> set_;
    // Interval representation (valid when !explicit_). Empty iff
    // lo_ > hi_.
    int64_t lo_;
    int64_t hi_;
};

} // namespace heron::csp

#endif // HERON_CSP_DOMAIN_H
