/**
 * @file
 * RandSAT: randomized constraint-satisfaction solving.
 *
 * Heron uses a constraint solver only to draw *random valid
 * assignments* from a CSP (paper §5.1, "random constraint
 * satisfaction"). This solver performs randomized backtracking
 * search with propagation after every decision, restarting after a
 * backtrack budget is exhausted.
 */
#ifndef HERON_CSP_SOLVER_H
#define HERON_CSP_SOLVER_H

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "csp/propagate.h"
#include "support/rng.h"

namespace heron::csp {

/** Knobs for the randomized solver. */
struct SolverConfig {
    /** Backtracks before a random restart. */
    int max_backtracks_per_restart = 512;
    /** Restarts before giving up on one solve call. */
    int max_restarts = 16;
    /**
     * Prefer branching on tunable variables before auxiliary ones
     * (auxiliaries are usually fixed by propagation anyway).
     */
    bool branch_tunables_first = true;
    /**
     * Wall-clock deadline per solve call in milliseconds (0 =
     * unbounded). Checked before every propagation step, so a solve
     * overshoots the deadline by at most one step.
     */
    double deadline_ms = 0.0;
};

/** Why a solve call returned no assignment. */
enum class SolveFailure : uint8_t {
    kNone = 0,
    /** Proven unsatisfiable (root propagation wiped out a domain). */
    kUnsat,
    /** Backtrack/restart budget exhausted (may still be sat). */
    kBudget,
    /** Wall-clock deadline expired (may still be sat). */
    kDeadline,
};

/** Name of a failure reason ("none", "unsat", ...). */
const char *solve_failure_name(SolveFailure failure);

/** Statistics accumulated across solve calls. */
struct SolverStats {
    int64_t solve_calls = 0;
    int64_t solutions = 0;
    int64_t backtracks = 0;
    int64_t restarts = 0;
    int64_t failures = 0;
    /** Solve calls that proved the subproblem unsatisfiable. */
    int64_t unsat = 0;
    /** Solve calls that exhausted the backtrack/restart budget. */
    int64_t budget_exhausted = 0;
    /** Solve calls aborted by the wall-clock deadline. */
    int64_t deadline_aborts = 0;
};

/**
 * Randomized finite-domain solver over a Csp plus optional extra
 * constraints.
 */
class RandSatSolver
{
  public:
    /** Solver over the base problem only. */
    explicit RandSatSolver(const Csp &csp, SolverConfig config = {});

    /**
     * Draw one random valid assignment of all variables.
     * @param extra additional constraints (e.g. CGA crossover IN
     *        constraints); not stored.
     * @return nullopt when no solution was found within the budget
     *         (the subproblem may be unsatisfiable).
     */
    std::optional<Assignment>
    solve_one(Rng &rng, const std::vector<Constraint> &extra = {});

    /**
     * Draw up to @p n random valid assignments (duplicates are
     * removed). Fewer may be returned for tight subproblems.
     */
    std::vector<Assignment>
    solve_n(Rng &rng, int n, const std::vector<Constraint> &extra = {});

    /**
     * Check satisfiability of the problem plus @p extra within the
     * configured budget (sound "sat", incomplete "unsat").
     */
    bool feasible(Rng &rng, const std::vector<Constraint> &extra = {});

    /** Accumulated statistics. */
    const SolverStats &stats() const { return stats_; }

    /**
     * Why the most recent solve_one/feasible call failed (kNone
     * after a success). Lets callers distinguish a proven-UNSAT
     * subproblem from an exhausted budget or an expired deadline
     * and degrade accordingly.
     */
    SolveFailure last_failure() const { return last_failure_; }

  private:
    const Csp &csp_;
    SolverConfig config_;
    SolverStats stats_;
    SolveFailure last_failure_ = SolveFailure::kNone;

    std::optional<Assignment>
    search(Rng &rng, const std::vector<Constraint> &extra);
};

} // namespace heron::csp

#endif // HERON_CSP_SOLVER_H
