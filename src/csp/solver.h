/**
 * @file
 * RandSAT: randomized constraint-satisfaction solving.
 *
 * Heron uses a constraint solver only to draw *random valid
 * assignments* from a CSP (paper §5.1, "random constraint
 * satisfaction"). This solver performs randomized backtracking
 * search with propagation after every decision, restarting after a
 * backtrack budget is exhausted.
 *
 * Throughput design: the solver owns one PropagationEngine for its
 * whole lifetime and computes the base problem's root-propagation
 * fixpoint once, in the constructor. Every solve call starts from
 * that memoized fixpoint — extra constraints are layered on with
 * push_extras()/pop_extras(), decisions backtrack over the engine's
 * undo trail, and restarts pop back to the fixpoint instead of
 * rebuilding the engine. A bounded signature-keyed memo
 * short-circuits extra-constraint sets recently *proven* UNSAT by
 * root propagation (CGA re-proposes the same invalid crossovers
 * often); budget/deadline failures are never memoized because they
 * are not proofs.
 */
#ifndef HERON_CSP_SOLVER_H
#define HERON_CSP_SOLVER_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "csp/csp.h"
#include "csp/propagate.h"
#include "support/rng.h"

namespace heron::csp {

/** Knobs for the randomized solver. */
struct SolverConfig {
    /** Backtracks before a random restart. */
    int max_backtracks_per_restart = 512;
    /** Restarts before giving up on one solve call. */
    int max_restarts = 16;
    /**
     * Prefer branching on tunable variables before auxiliary ones
     * (auxiliaries are usually fixed by propagation anyway).
     */
    bool branch_tunables_first = true;
    /**
     * Wall-clock deadline per solve call in milliseconds (0 =
     * unbounded). Checked before every propagation step, so a solve
     * overshoots the deadline by at most one step.
     */
    double deadline_ms = 0.0;
    /**
     * Memoize extra-constraint sets proven UNSAT by root
     * propagation. SampleBatch disables this inside its workers so
     * aggregate batch statistics are worker-count invariant.
     */
    bool unsat_memo = true;
};

/** Why a solve call returned no assignment. */
enum class SolveFailure : uint8_t {
    kNone = 0,
    /** Proven unsatisfiable (root propagation wiped out a domain). */
    kUnsat,
    /** Backtrack/restart budget exhausted (may still be sat). */
    kBudget,
    /** Wall-clock deadline expired (may still be sat). */
    kDeadline,
};

/** Name of a failure reason ("none", "unsat", ...). */
const char *solve_failure_name(SolveFailure failure);

/** Statistics accumulated across solve calls. */
struct SolverStats {
    int64_t solve_calls = 0;
    int64_t solutions = 0;
    int64_t backtracks = 0;
    int64_t restarts = 0;
    int64_t failures = 0;
    /** Solve calls that proved the subproblem unsatisfiable. */
    int64_t unsat = 0;
    /** Solve calls that exhausted the backtrack/restart budget. */
    int64_t budget_exhausted = 0;
    /** Solve calls aborted by the wall-clock deadline. */
    int64_t deadline_aborts = 0;
    /** Propagation fixpoint computations. */
    int64_t propagations = 0;
    /** Individual constraint revisions. */
    int64_t revisions = 0;
    /** UNSAT solve calls answered from the signature memo. */
    int64_t unsat_memo_hits = 0;

    /** Field-wise accumulation (merging worker/offspring solvers). */
    SolverStats &operator+=(const SolverStats &other);
};

/**
 * Randomized finite-domain solver over a Csp plus optional extra
 * constraints.
 *
 * Not thread-safe: one RandSatSolver per thread (see SampleBatch
 * for the deterministic parallel front-end).
 */
class RandSatSolver
{
  public:
    /** Solver over the base problem only. */
    explicit RandSatSolver(const Csp &csp, SolverConfig config = {});

    /**
     * Draw one random valid assignment of all variables.
     * @param extra additional constraints (e.g. CGA crossover IN
     *        constraints); not stored.
     * @return nullopt when no solution was found within the budget
     *         (the subproblem may be unsatisfiable).
     */
    std::optional<Assignment>
    solve_one(Rng &rng, const std::vector<Constraint> &extra = {});

    /**
     * Draw up to @p n random valid assignments (duplicates are
     * removed). Fewer may be returned for tight subproblems.
     */
    std::vector<Assignment>
    solve_n(Rng &rng, int n, const std::vector<Constraint> &extra = {});

    /**
     * Check satisfiability of the problem plus @p extra within the
     * configured budget (sound "sat", incomplete "unsat").
     */
    bool feasible(Rng &rng, const std::vector<Constraint> &extra = {});

    /** Accumulated statistics. */
    const SolverStats &stats() const { return stats_; }

    /**
     * Why the most recent solve_one/feasible call failed (kNone
     * after a success). Lets callers distinguish a proven-UNSAT
     * subproblem from an exhausted budget or an expired deadline
     * and degrade accordingly.
     */
    SolveFailure last_failure() const { return last_failure_; }

    /** The problem this solver samples from. */
    const Csp &csp() const { return csp_; }

    /** The configuration the solver was built with. */
    const SolverConfig &config() const { return config_; }

  private:
    /** Entries kept in the UNSAT memo before it is reset. */
    static constexpr size_t kUnsatMemoCap = 4096;

    const Csp &csp_;
    SolverConfig config_;
    SolverStats stats_;
    SolveFailure last_failure_ = SolveFailure::kNone;

    /** Persistent engine holding the base root fixpoint at depth 0. */
    PropagationEngine engine_;
    /** False when the base problem is UNSAT at the root. */
    bool root_ok_ = false;
    /** Engine counters already folded into stats_. */
    PropagationEngine::Stats engine_synced_;

    /**
     * Extra-constraint sets proven UNSAT by root propagation, keyed
     * by an order-independent combined signature; the stored sorted
     * per-constraint signature vector guards against collisions.
     */
    std::unordered_map<uint64_t, std::vector<uint64_t>> unsat_memo_;

    std::optional<Assignment>
    search(Rng &rng, const std::vector<Constraint> &extra);

    /** Fold new engine propagation counters into stats_. */
    void sync_engine_stats();
};

} // namespace heron::csp

#endif // HERON_CSP_SOLVER_H
