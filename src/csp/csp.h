/**
 * @file
 * Constraint satisfaction problem representation.
 *
 * Heron formulates the constrained search space as a CSP
 * (CSP_initial in the paper). The six constraint types mirror
 * Table 7 of the paper:
 *
 *   PROD(v, [v1..vn])        v = v1 * ... * vn
 *   SUM(v, [v1..vn])         v = v1 + ... + vn
 *   EQ(v1, v2)               v1 = v2
 *   LE(v1, v2)               v1 <= v2
 *   IN(v, [c1..cn])          v in {c1..cn}        (constants)
 *   SELECT(v, u, [v1..vn])   v = v_u              (u is a variable)
 */
#ifndef HERON_CSP_CSP_H
#define HERON_CSP_CSP_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "csp/domain.h"

namespace heron::csp {

/** Index of a variable within a Csp. */
using VarId = int32_t;

/** A complete value assignment, indexed by VarId. */
using Assignment = std::vector<int64_t>;

/** Constraint types (paper Table 7). */
enum class ConstraintKind : uint8_t {
    kProd,
    kSum,
    kEq,
    kLe,
    kIn,
    kSelect,
};

/** Name of a constraint kind ("PROD", ...). */
const char *constraint_kind_name(ConstraintKind kind);

/**
 * Content hash of an assignment (for dedup and memo keys). Stable
 * across runs; not cryptographic.
 */
uint64_t assignment_hash(const Assignment &a);

/**
 * One constraint. Fields used depend on kind:
 *  - kProd/kSum: result = f(operands)
 *  - kEq/kLe:    result (v1) vs operands[0] (v2)
 *  - kIn:        result in constants
 *  - kSelect:    result = operands[selector's value]
 */
struct Constraint {
    ConstraintKind kind;
    VarId result = -1;
    std::vector<VarId> operands;
    VarId selector = -1;
    std::vector<int64_t> constants;
    /** Provenance, e.g. the generation rule that emitted it. */
    std::string note;

    /** Human-readable form using the owning problem's names. */
    std::string to_string(const class Csp &csp) const;

    /**
     * Content hash of the constraint's semantics (kind, variables,
     * constants; the provenance note is excluded). Two constraints
     * with equal hashes filter identically with high probability;
     * used as a building block for the solver's UNSAT memo.
     */
    uint64_t signature() const;
};

/** Variable metadata. */
struct VarInfo {
    std::string name;
    Domain initial;
    /**
     * Tunable variables are the chromosome genes: the solver
     * branches on them and search algorithms mutate them.
     */
    bool tunable = false;
};

/**
 * A finite-domain constraint satisfaction problem.
 *
 * Construction-only API: rules add variables and constraints; the
 * propagation engine and solver consume the finished problem.
 */
class Csp
{
  public:
    /** Add a variable; names must be unique. @return its id. */
    VarId add_var(const std::string &name, Domain initial,
                  bool tunable = false);

    /** Add (or reuse) a constant variable with a singleton domain. */
    VarId add_const(int64_t value);

    /** v = v1 * ... * vn */
    void add_prod(VarId v, std::vector<VarId> operands,
                  std::string note = {});

    /** v = v1 + ... + vn */
    void add_sum(VarId v, std::vector<VarId> operands,
                 std::string note = {});

    /** v1 = v2 */
    void add_eq(VarId v1, VarId v2, std::string note = {});

    /** v1 <= v2 */
    void add_le(VarId v1, VarId v2, std::string note = {});

    /** v in {c1..cn} */
    void add_in(VarId v, std::vector<int64_t> constants,
                std::string note = {});

    /** v = operands[u] */
    void add_select(VarId v, VarId u, std::vector<VarId> operands,
                    std::string note = {});

    /** Append a prebuilt constraint (used by CGA offspring CSPs). */
    void add_constraint(Constraint c);

    /** Variable count. */
    size_t num_vars() const { return vars_.size(); }

    /** Constraint count. */
    size_t num_constraints() const { return constraints_.size(); }

    /** Metadata for one variable. */
    const VarInfo &var(VarId id) const { return vars_[id]; }

    /** All variables. */
    const std::vector<VarInfo> &vars() const { return vars_; }

    /** All constraints. */
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }

    /** Ids of tunable variables, in insertion order. */
    const std::vector<VarId> &tunable_vars() const
    {
        return tunables_;
    }

    /** Lookup by name; -1 when absent. */
    VarId find_var(const std::string &name) const;

    /** Lookup by name; aborts when absent. */
    VarId var_id(const std::string &name) const;

    /**
     * True when @p a satisfies constraint @p c exactly (concrete
     * evaluation, no propagation).
     */
    bool satisfies(const Constraint &c, const Assignment &a) const;

    /** Number of constraints violated by @p a. */
    int count_violations(const Assignment &a) const;

    /** True when @p a satisfies every constraint. */
    bool valid(const Assignment &a) const;

    /** Multi-line dump of all variables and constraints. */
    std::string to_string() const;

  private:
    std::vector<VarInfo> vars_;
    std::vector<Constraint> constraints_;
    std::vector<VarId> tunables_;
    std::unordered_map<std::string, VarId> by_name_;
    std::unordered_map<int64_t, VarId> const_cache_;
};

} // namespace heron::csp

#endif // HERON_CSP_CSP_H
