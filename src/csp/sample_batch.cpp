#include "csp/sample_batch.h"

#include <algorithm>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::csp {

SampleBatch::SampleBatch(const Csp &csp, SolverConfig config,
                         int workers)
    : csp_(csp), config_(config), workers_(std::max(1, workers))
{
    // A memo hit's counters depend on which slots a worker served
    // before, which would make aggregate stats vary with the worker
    // count; the slot-wave structure already avoids re-solving
    // proven-UNSAT subproblems within a batch.
    config_.unsat_memo = false;
}

SampleBatch::~SampleBatch()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(pool_mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
SampleBatch::ensure_solvers()
{
    if (!solvers_.empty())
        return;
    solvers_.reserve(static_cast<size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
        solvers_.push_back(
            std::make_unique<RandSatSolver>(csp_, config_));
}

void
SampleBatch::ensure_threads()
{
    if (!threads_.empty() || workers_ == 1)
        return;
    threads_.reserve(static_cast<size_t>(workers_ - 1));
    for (int w = 1; w < workers_; ++w)
        threads_.emplace_back([this, w] { worker_loop(w); });
}

void
SampleBatch::solve_slots(
    int w, uint64_t seed, size_t begin, size_t end,
    const std::vector<Constraint> &extra,
    std::vector<std::optional<Assignment>> *results,
    std::vector<SolveFailure> *failures)
{
    RandSatSolver &solver = *solvers_[static_cast<size_t>(w)];
    // First slot of this worker's residue class inside the wave.
    size_t s = begin +
               (static_cast<size_t>(w) + static_cast<size_t>(workers_) -
                begin % static_cast<size_t>(workers_)) %
                   static_cast<size_t>(workers_);
    for (; s < end; s += static_cast<size_t>(workers_)) {
        Rng rng = Rng::for_stream(seed, s);
        (*results)[s] = solver.solve_one(rng, extra);
        (*failures)[s] = solver.last_failure();
    }
}

void
SampleBatch::worker_loop(int w)
{
    uint64_t seen_gen = 0;
    for (;;) {
        uint64_t seed;
        size_t begin, end;
        const std::vector<Constraint> *extra;
        std::vector<std::optional<Assignment>> *results;
        std::vector<SolveFailure> *failures;
        {
            std::unique_lock<std::mutex> lock(pool_mu_);
            work_cv_.wait(lock, [&] {
                return stop_ || wave_gen_ != seen_gen;
            });
            if (stop_)
                return;
            seen_gen = wave_gen_;
            seed = wave_seed_;
            begin = wave_begin_;
            end = wave_end_;
            extra = wave_extra_;
            results = wave_results_;
            failures = wave_failures_;
        }
        solve_slots(w, seed, begin, end, *extra, results, failures);
        {
            std::lock_guard<std::mutex> lock(pool_mu_);
            if (--outstanding_ == 0)
                done_cv_.notify_one();
        }
    }
}

void
SampleBatch::run_wave(uint64_t seed, size_t begin, size_t end,
                      const std::vector<Constraint> &extra,
                      std::vector<std::optional<Assignment>> *results,
                      std::vector<SolveFailure> *failures)
{
    if (workers_ == 1) {
        solve_slots(0, seed, begin, end, extra, results, failures);
        return;
    }
    if (end - begin == 1) {
        // Single-slot waves gain nothing from a pool dispatch; run
        // inline. Slot->solver mapping must still match the
        // parallel path so stats stay invariant.
        int w = static_cast<int>(begin %
                                 static_cast<size_t>(workers_));
        solve_slots(w, seed, begin, end, extra, results, failures);
        return;
    }

    ensure_threads();
    {
        std::lock_guard<std::mutex> lock(pool_mu_);
        wave_seed_ = seed;
        wave_begin_ = begin;
        wave_end_ = end;
        wave_extra_ = &extra;
        wave_results_ = results;
        wave_failures_ = failures;
        outstanding_ = workers_ - 1;
        ++wave_gen_;
    }
    work_cv_.notify_all();
    // The caller is worker 0: it solves its own residue class
    // instead of blocking, so a wave costs workers_-1 wakeups and
    // zero thread creations.
    solve_slots(0, seed, begin, end, extra, results, failures);
    std::unique_lock<std::mutex> lock(pool_mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

std::vector<Assignment>
SampleBatch::sample(uint64_t seed, int n,
                    const std::vector<Constraint> &extra)
{
    HERON_TRACE_SCOPE("csp/sample_batch");
    std::vector<Assignment> out;
    if (n <= 0)
        return out;
    ensure_solvers();
    last_failure_ = SolveFailure::kNone;

    // Same over-draw allowance as RandSatSolver::solve_n: a few
    // extra attempts absorb duplicate draws in tight spaces.
    const size_t cap = static_cast<size_t>(n) +
                       static_cast<size_t>(std::max(4, n / 2));
    // Reused scratch: the outer vectors keep their capacity across
    // calls, and the dedup set's nodes and buckets come out of the
    // arena — destroy the old set *before* the reset hands its
    // memory back.
    results_.assign(cap, std::nullopt);
    failures_.assign(cap, SolveFailure::kNone);
    seen_.reset();
    seen_arena_.reset();
    seen_.emplace(16, std::hash<uint64_t>(),
                  std::equal_to<uint64_t>(),
                  support::ArenaAllocator<uint64_t>(&seen_arena_));

    out.reserve(static_cast<size_t>(n));
    size_t solved = 0;  // slots solved so far (wave frontier)
    size_t merged = 0;  // slots consumed by the merge
    bool failed = false;
    while (!failed && out.size() < static_cast<size_t>(n) &&
           solved < cap) {
        // Deficit-driven wave sizing: depends only on merge results,
        // never on the worker count.
        size_t wave = std::min(
            cap - solved, static_cast<size_t>(n) - out.size());
        run_wave(seed, solved, solved + wave, extra, &results_,
                 &failures_);
        solved += wave;
        for (; merged < solved && out.size() < static_cast<size_t>(n);
             ++merged) {
            if (!results_[merged]) {
                // Mirror solve_n: stop at the first failed slot (the
                // subproblem is likely too tight to keep drawing).
                last_failure_ = failures_[merged];
                failed = true;
                break;
            }
            uint64_t h = assignment_hash(*results_[merged]);
            if (seen_->insert(h).second)
                out.push_back(std::move(*results_[merged]));
        }
    }
    HERON_COUNTER_ADD("csp.batch_slots",
                      static_cast<int64_t>(solved));
    return out;
}

SolverStats
SampleBatch::stats() const
{
    SolverStats total;
    for (const auto &s : solvers_)
        total += s->stats();
    return total;
}

} // namespace heron::csp
