#include "csp/sample_batch.h"

#include <algorithm>
#include <thread>
#include <unordered_set>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::csp {

SampleBatch::SampleBatch(const Csp &csp, SolverConfig config,
                         int workers)
    : csp_(csp), config_(config), workers_(std::max(1, workers))
{
    // A memo hit's counters depend on which slots a worker served
    // before, which would make aggregate stats vary with the worker
    // count; the slot-wave structure already avoids re-solving
    // proven-UNSAT subproblems within a batch.
    config_.unsat_memo = false;
}

void
SampleBatch::ensure_solvers()
{
    if (!solvers_.empty())
        return;
    solvers_.reserve(static_cast<size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
        solvers_.push_back(
            std::make_unique<RandSatSolver>(csp_, config_));
}

void
SampleBatch::run_wave(uint64_t seed, size_t begin, size_t end,
                      const std::vector<Constraint> &extra,
                      std::vector<std::optional<Assignment>> *results,
                      std::vector<SolveFailure> *failures)
{
    auto solve_slots = [&](int w) {
        RandSatSolver &solver = *solvers_[static_cast<size_t>(w)];
        // First slot of this worker's residue class inside the wave.
        size_t s = begin +
                   (static_cast<size_t>(w) + static_cast<size_t>(workers_) -
                    begin % static_cast<size_t>(workers_)) %
                       static_cast<size_t>(workers_);
        for (; s < end; s += static_cast<size_t>(workers_)) {
            Rng rng = Rng::for_stream(seed, s);
            (*results)[s] = solver.solve_one(rng, extra);
            (*failures)[s] = solver.last_failure();
        }
    };

    if (workers_ == 1 || end - begin == 1) {
        // Inline fast path; single-slot waves gain nothing from
        // threads. Slot->solver mapping must still match the
        // parallel path so stats stay invariant.
        if (end - begin == 1 && workers_ > 1) {
            int w = static_cast<int>(begin %
                                     static_cast<size_t>(workers_));
            solve_slots(w);
        } else {
            solve_slots(0);
        }
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
        threads.emplace_back(solve_slots, w);
    for (auto &t : threads)
        t.join();
}

std::vector<Assignment>
SampleBatch::sample(uint64_t seed, int n,
                    const std::vector<Constraint> &extra)
{
    HERON_TRACE_SCOPE("csp/sample_batch");
    std::vector<Assignment> out;
    if (n <= 0)
        return out;
    ensure_solvers();
    last_failure_ = SolveFailure::kNone;

    // Same over-draw allowance as RandSatSolver::solve_n: a few
    // extra attempts absorb duplicate draws in tight spaces.
    const size_t cap = static_cast<size_t>(n) +
                       static_cast<size_t>(std::max(4, n / 2));
    std::vector<std::optional<Assignment>> results(cap);
    std::vector<SolveFailure> failures(cap, SolveFailure::kNone);

    std::unordered_set<uint64_t> seen;
    out.reserve(static_cast<size_t>(n));
    size_t solved = 0;  // slots solved so far (wave frontier)
    size_t merged = 0;  // slots consumed by the merge
    bool failed = false;
    while (!failed && out.size() < static_cast<size_t>(n) &&
           solved < cap) {
        // Deficit-driven wave sizing: depends only on merge results,
        // never on the worker count.
        size_t wave = std::min(
            cap - solved, static_cast<size_t>(n) - out.size());
        run_wave(seed, solved, solved + wave, extra, &results,
                 &failures);
        solved += wave;
        for (; merged < solved && out.size() < static_cast<size_t>(n);
             ++merged) {
            if (!results[merged]) {
                // Mirror solve_n: stop at the first failed slot (the
                // subproblem is likely too tight to keep drawing).
                last_failure_ = failures[merged];
                failed = true;
                break;
            }
            uint64_t h = assignment_hash(*results[merged]);
            if (seen.insert(h).second)
                out.push_back(std::move(*results[merged]));
        }
    }
    HERON_COUNTER_ADD("csp.batch_slots",
                      static_cast<int64_t>(solved));
    return out;
}

SolverStats
SampleBatch::stats() const
{
    SolverStats total;
    for (const auto &s : solvers_)
        total += s->stats();
    return total;
}

} // namespace heron::csp
