#include "csp/propagate.h"

#include <algorithm>
#include <limits>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"

namespace heron::csp {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

#if !defined(HERON_DISABLE_TRACING)
/** Count a domain wipeout against the failing constraint's kind. */
void
count_constraint_failure(ConstraintKind kind)
{
    // One counter per kind, resolved once; the failure path only
    // pays an atomic increment.
    static metrics::Counter *by_kind[] = {
        &metrics::Registry::global().counter("csp.fail.prod"),
        &metrics::Registry::global().counter("csp.fail.sum"),
        &metrics::Registry::global().counter("csp.fail.eq"),
        &metrics::Registry::global().counter("csp.fail.le"),
        &metrics::Registry::global().counter("csp.fail.in"),
        &metrics::Registry::global().counter("csp.fail.select"),
    };
    by_kind[static_cast<size_t>(kind)]->add(1);
}
#else
void
count_constraint_failure(ConstraintKind)
{
}
#endif

} // namespace

PropagationEngine::PropagationEngine(const Csp &csp,
                                     const std::vector<Constraint> &extra)
    : csp_(csp)
{
    build(extra);
}

PropagationEngine::PropagationEngine(const Csp &csp) : csp_(csp)
{
    build({});
}

void
PropagationEngine::build(const std::vector<Constraint> &extra)
{
    domains_.reserve(csp_.num_vars());
    for (const auto &v : csp_.vars())
        domains_.push_back(v.initial);

    all_constraints_.reserve(csp_.constraints().size() + extra.size());
    for (const auto &c : csp_.constraints())
        all_constraints_.push_back(&c);
    for (const auto &c : extra)
        all_constraints_.push_back(&c);

    watchers_.assign(csp_.num_vars(), {});
    auto watch = [&](VarId v, int ci) {
        if (v >= 0)
            watchers_[static_cast<size_t>(v)].push_back(ci);
    };
    for (size_t ci = 0; ci < all_constraints_.size(); ++ci) {
        const Constraint &c = *all_constraints_[ci];
        watch(c.result, static_cast<int>(ci));
        for (VarId op : c.operands)
            watch(op, static_cast<int>(ci));
        watch(c.selector, static_cast<int>(ci));
    }

    queued_.assign(all_constraints_.size(), true);
    queue_.clear();
    queue_.reserve(all_constraints_.size());
    for (size_t ci = 0; ci < all_constraints_.size(); ++ci)
        queue_.push_back(static_cast<int>(ci));
}

void
PropagationEngine::restore(std::vector<Domain> snapshot)
{
    HERON_CHECK_EQ(snapshot.size(), domains_.size());
    domains_ = std::move(snapshot);
    std::fill(queued_.begin(), queued_.end(), false);
    queue_.clear();
}

void
PropagationEngine::touch(VarId id)
{
    enqueue_watchers(id);
}

void
PropagationEngine::enqueue_watchers(VarId id)
{
    for (int ci : watchers_[static_cast<size_t>(id)]) {
        if (!queued_[static_cast<size_t>(ci)]) {
            queued_[static_cast<size_t>(ci)] = true;
            queue_.push_back(ci);
        }
    }
}

bool
PropagationEngine::propagate()
{
    HERON_COUNTER_INC("csp.propagations");
    while (!queue_.empty()) {
        int ci = queue_.back();
        queue_.pop_back();
        queued_[static_cast<size_t>(ci)] = false;
        const Constraint &c =
            *all_constraints_[static_cast<size_t>(ci)];
        if (!revise(c)) {
            HERON_COUNTER_INC("csp.domain_wipeouts");
            count_constraint_failure(c.kind);
            return false;
        }
    }
    return true;
}

bool
PropagationEngine::assign_and_propagate(VarId id, int64_t value)
{
    Domain &d = domains_[static_cast<size_t>(id)];
    if (!d.contains(value))
        return false;
    if (!d.is_singleton()) {
        d.assign(value);
        enqueue_watchers(id);
    }
    return propagate();
}

bool
PropagationEngine::all_assigned() const
{
    for (const auto &d : domains_)
        if (!d.is_singleton())
            return false;
    return true;
}

Assignment
PropagationEngine::extract() const
{
    Assignment a(domains_.size());
    for (size_t i = 0; i < domains_.size(); ++i) {
        HERON_CHECK(domains_[i].is_singleton())
            << "variable " << csp_.var(static_cast<VarId>(i)).name
            << " not assigned";
        a[i] = domains_[i].value();
    }
    return a;
}

bool
PropagationEngine::clamp(VarId id, int64_t lo, int64_t hi)
{
    Domain &d = domains_[static_cast<size_t>(id)];
    if (d.restrict_bounds(lo, hi))
        enqueue_watchers(id);
    return !d.empty();
}

bool
PropagationEngine::revise(const Constraint &c)
{
    switch (c.kind) {
      case ConstraintKind::kProd: return revise_prod(c);
      case ConstraintKind::kSum: return revise_sum(c);
      case ConstraintKind::kEq: return revise_eq(c);
      case ConstraintKind::kLe: return revise_le(c);
      case ConstraintKind::kIn: return revise_in(c);
      case ConstraintKind::kSelect: return revise_select(c);
    }
    return false;
}

bool
PropagationEngine::revise_prod(const Constraint &c)
{
    // All product operands are non-negative in Heron-generated
    // problems (tile sizes, loop lengths, byte counts).
    const size_t n = c.operands.size();
    Domain &dv = domains_[static_cast<size_t>(c.result)];
    if (dv.empty())
        return false;

    int64_t min_prod = 1, max_prod = 1;
    for (VarId op : c.operands) {
        const Domain &d = domains_[static_cast<size_t>(op)];
        if (d.empty())
            return false;
        HERON_CHECK_GE(d.min(), 0)
            << "PROD operand may be negative: "
            << csp_.var(op).name;
        min_prod = checked_mul(min_prod, d.min());
        max_prod = checked_mul(max_prod, d.max());
    }
    if (!clamp(c.result, min_prod, max_prod))
        return false;

    // Filter each operand by bounds implied by the others.
    for (size_t i = 0; i < n; ++i) {
        int64_t others_min = 1, others_max = 1;
        for (size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const Domain &d = domains_[static_cast<size_t>(c.operands[j])];
            others_min = checked_mul(others_min, d.min());
            others_max = checked_mul(others_max, d.max());
        }
        int64_t lo = 0, hi = kInf;
        if (others_max > 0 && others_max != kInf && dv.min() > 0)
            lo = ceil_div(dv.min(), others_max);
        if (others_min > 0 && dv.max() != kInf)
            hi = dv.max() / others_min;
        if (!clamp(c.operands[i], lo, hi))
            return false;
    }

    // Exactness: when all but at most one participant is fixed.
    size_t unassigned = 0;
    int64_t fixed_prod = 1;
    size_t open_idx = n;
    for (size_t i = 0; i < n; ++i) {
        const Domain &d = domains_[static_cast<size_t>(c.operands[i])];
        if (d.is_singleton()) {
            fixed_prod = checked_mul(fixed_prod, d.value());
        } else {
            ++unassigned;
            open_idx = i;
        }
    }

    if (unassigned == 0) {
        Domain &d = domains_[static_cast<size_t>(c.result)];
        if (!d.contains(fixed_prod))
            return false;
        if (!d.is_singleton()) {
            d.assign(fixed_prod);
            enqueue_watchers(c.result);
        }
        return true;
    }
    if (unassigned == 1 && dv.is_singleton()) {
        int64_t target = dv.value();
        VarId open = c.operands[open_idx];
        Domain &d = domains_[static_cast<size_t>(open)];
        if (fixed_prod == 0) {
            // 0 * x == target requires target == 0; x unconstrained.
            return target == 0;
        }
        if (target % fixed_prod != 0)
            return false;
        int64_t needed = target / fixed_prod;
        if (!d.contains(needed))
            return false;
        if (!d.is_singleton()) {
            d.assign(needed);
            enqueue_watchers(open);
        }
    }
    return true;
}

bool
PropagationEngine::revise_sum(const Constraint &c)
{
    const size_t n = c.operands.size();
    Domain &dv = domains_[static_cast<size_t>(c.result)];
    if (dv.empty())
        return false;

    int64_t min_sum = 0, max_sum = 0;
    bool max_inf = false;
    for (VarId op : c.operands) {
        const Domain &d = domains_[static_cast<size_t>(op)];
        if (d.empty())
            return false;
        min_sum += d.min();
        if (d.max() == kInf)
            max_inf = true;
        else
            max_sum += d.max();
    }
    if (!clamp(c.result, min_sum, max_inf ? kInf : max_sum))
        return false;

    for (size_t i = 0; i < n; ++i) {
        int64_t others_min = 0, others_max = 0;
        bool others_max_inf = false;
        for (size_t j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const Domain &d = domains_[static_cast<size_t>(c.operands[j])];
            others_min += d.min();
            if (d.max() == kInf)
                others_max_inf = true;
            else
                others_max += d.max();
        }
        int64_t lo = others_max_inf
                         ? std::numeric_limits<int64_t>::min()
                         : dv.min() - others_max;
        int64_t hi = dv.max() == kInf ? kInf : dv.max() - others_min;
        if (!clamp(c.operands[i], lo, hi))
            return false;
    }
    return true;
}

bool
PropagationEngine::revise_eq(const Constraint &c)
{
    Domain &a = domains_[static_cast<size_t>(c.result)];
    Domain &b = domains_[static_cast<size_t>(c.operands[0])];
    if (a.intersect(b))
        enqueue_watchers(c.result);
    if (b.intersect(a))
        enqueue_watchers(c.operands[0]);
    return !a.empty() && !b.empty();
}

bool
PropagationEngine::revise_le(const Constraint &c)
{
    const Domain &a = domains_[static_cast<size_t>(c.result)];
    const Domain &b = domains_[static_cast<size_t>(c.operands[0])];
    if (a.empty() || b.empty())
        return false;
    if (!clamp(c.result, std::numeric_limits<int64_t>::min(), b.max()))
        return false;
    if (!clamp(c.operands[0], a.min(), kInf))
        return false;
    return true;
}

bool
PropagationEngine::revise_in(const Constraint &c)
{
    Domain &d = domains_[static_cast<size_t>(c.result)];
    if (d.intersect_values(c.constants))
        enqueue_watchers(c.result);
    return !d.empty();
}

bool
PropagationEngine::revise_select(const Constraint &c)
{
    const int64_t n = static_cast<int64_t>(c.operands.size());
    if (!clamp(c.selector, 0, n - 1))
        return false;
    Domain &du = domains_[static_cast<size_t>(c.selector)];
    Domain &dv = domains_[static_cast<size_t>(c.result)];
    if (du.empty() || dv.empty())
        return false;

    // Prune selector values whose selected variable cannot equal v.
    if (du.is_explicit() || du.size() <= 64) {
        for (int64_t u : du.values()) {
            const Domain &dop =
                domains_[static_cast<size_t>(c.operands[static_cast<size_t>(u)])];
            bool feasible =
                !dop.empty() && dop.max() >= dv.min() && dop.min() <= dv.max();
            if (!feasible) {
                if (du.remove(u))
                    enqueue_watchers(c.selector);
            }
        }
        if (du.empty())
            return false;
    }

    // v is bounded by the union of candidate operand bounds.
    int64_t lo = kInf, hi = std::numeric_limits<int64_t>::min();
    for (int64_t u : du.values()) {
        const Domain &dop =
            domains_[static_cast<size_t>(c.operands[static_cast<size_t>(u)])];
        if (dop.empty())
            return false;
        lo = std::min(lo, dop.min());
        hi = std::max(hi, dop.max());
    }
    if (!clamp(c.result, lo, hi))
        return false;

    // Fixed selector degenerates to EQ(v, op_u).
    if (du.is_singleton()) {
        VarId op = c.operands[static_cast<size_t>(du.value())];
        Domain &dop = domains_[static_cast<size_t>(op)];
        if (dv.intersect(dop))
            enqueue_watchers(c.result);
        if (dop.intersect(dv))
            enqueue_watchers(op);
        return !dv.empty() && !dop.empty();
    }
    return true;
}

} // namespace heron::csp
