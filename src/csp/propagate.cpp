#include "csp/propagate.h"

#include <algorithm>
#include <limits>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"

namespace heron::csp {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

/** saved_epoch_ value that matches no live scope. */
constexpr uint64_t kNoEpoch = 0;

#if !defined(HERON_DISABLE_TRACING)
/** Count a domain wipeout against the failing constraint's kind. */
void
count_constraint_failure(ConstraintKind kind)
{
    // One counter per kind, resolved once; the failure path only
    // pays an atomic increment.
    static metrics::Counter *by_kind[] = {
        &metrics::Registry::global().counter("csp.fail.prod"),
        &metrics::Registry::global().counter("csp.fail.sum"),
        &metrics::Registry::global().counter("csp.fail.eq"),
        &metrics::Registry::global().counter("csp.fail.le"),
        &metrics::Registry::global().counter("csp.fail.in"),
        &metrics::Registry::global().counter("csp.fail.select"),
    };
    by_kind[static_cast<size_t>(kind)]->add(1);
}
#else
void
count_constraint_failure(ConstraintKind)
{
}
#endif

} // namespace

PropagationEngine::PropagationEngine(const Csp &csp,
                                     const std::vector<Constraint> &extra)
    : csp_(csp)
{
    build(extra);
}

PropagationEngine::PropagationEngine(const Csp &csp) : csp_(csp)
{
    build({});
}

namespace {

/** Visit every variable @p c watches, in registration order. */
template <typename Fn>
void
for_each_watch(const Constraint &c, Fn &&fn)
{
    if (c.result >= 0)
        fn(c.result);
    for (VarId op : c.operands)
        if (op >= 0)
            fn(op);
    if (c.selector >= 0)
        fn(c.selector);
}

} // namespace

bool
PropagationEngine::compute_arith_safe(const Constraint &c) const
{
    // Only PROD carries checked arithmetic on its hot path (SUM
    // already folds raw). Safe means: over the current bounds —
    // which bound every reachable descendant state from above — all
    // operands are non-negative and the full product of upper bounds
    // leaves slack for the filter's intermediate sums (ceil_div adds
    // the divisor before dividing).
    if (c.kind != ConstraintKind::kProd)
        return false;
    int64_t prod_max = 1;
    for (VarId op : c.operands) {
        const size_t o = static_cast<size_t>(op);
        if (var_min_[o] > var_max_[o] || var_min_[o] < 0)
            return false;
        prod_max = checked_mul(prod_max, var_max_[o]);
        if (prod_max > (kInf >> 2))
            return false;
    }
    return true;
}

void
PropagationEngine::refresh_arith_safety()
{
    arith_safe_.resize(all_constraints_.size());
    for (size_t ci = 0; ci < all_constraints_.size(); ++ci)
        arith_safe_[ci] = compute_arith_safe(*all_constraints_[ci]);
}

void
PropagationEngine::build(const std::vector<Constraint> &extra)
{
    domains_.reserve(csp_.num_vars());
    for (const auto &v : csp_.vars())
        domains_.push_back(v.initial);
    saved_epoch_.assign(csp_.num_vars(), kNoEpoch);
    var_min_.resize(csp_.num_vars());
    var_max_.resize(csp_.num_vars());
    for (size_t i = 0; i < domains_.size(); ++i)
        refresh_bounds(static_cast<VarId>(i));

    all_constraints_.reserve(csp_.constraints().size() + extra.size());
    for (const auto &c : csp_.constraints())
        all_constraints_.push_back(&c);
    for (const auto &c : extra)
        all_constraints_.push_back(&c);
    base_constraint_count_ = all_constraints_.size();

    // CSR watcher lists for the base problem: count, prefix-sum,
    // fill. Filling in ascending ci keeps each variable's watcher
    // order identical to the historical per-var push_back order.
    watch_off_.assign(csp_.num_vars() + 1, 0);
    for (const Constraint *c : all_constraints_)
        for_each_watch(*c, [&](VarId v) {
            ++watch_off_[static_cast<size_t>(v) + 1];
        });
    for (size_t i = 1; i < watch_off_.size(); ++i)
        watch_off_[i] += watch_off_[i - 1];
    watch_flat_.resize(watch_off_.back());
    std::vector<uint32_t> cursor(watch_off_.begin(),
                                 watch_off_.end() - 1);
    for (size_t ci = 0; ci < all_constraints_.size(); ++ci)
        for_each_watch(*all_constraints_[ci], [&](VarId v) {
            watch_flat_[cursor[static_cast<size_t>(v)]++] =
                static_cast<int32_t>(ci);
        });
    extra_watchers_.assign(csp_.num_vars(), {});

    bounds_only_.clear();
    bounds_only_.reserve(all_constraints_.size());
    for (const Constraint *c : all_constraints_)
        bounds_only_.push_back(c->kind == ConstraintKind::kProd ||
                               c->kind == ConstraintKind::kSum ||
                               c->kind == ConstraintKind::kLe);

    refresh_arith_safety();

    queued_.assign(all_constraints_.size(), true);
    entail_depth_.assign(all_constraints_.size(), kNotEntailed);
    entail_token_.assign(all_constraints_.size(), 0);
    queue_.clear();
    queue_.reserve(all_constraints_.size());
    for (size_t ci = 0; ci < all_constraints_.size(); ++ci)
        queue_.push_back(static_cast<int>(ci));

    // Pre-size the revise scratch buffers to the widest constraint
    // so the hot path never reallocates.
    size_t max_arity = 1;
    for (const Constraint *c : all_constraints_)
        max_arity = std::max(max_arity, c->operands.size());
    reserve_scratch(max_arity);
}

void
PropagationEngine::reserve_scratch(size_t arity)
{
    if (scratch_min_.size() < arity + 1) {
        scratch_min_.resize(arity + 1);
        scratch_max_.resize(arity + 1);
        scratch_suf_min_.resize(arity + 1);
        scratch_suf_max_.resize(arity + 1);
    }
}

void
PropagationEngine::restore(std::vector<Domain> snapshot)
{
    HERON_CHECK_EQ(snapshot.size(), domains_.size());
    HERON_CHECK(level_marks_.empty())
        << "restore() with open trail levels";
    domains_ = std::move(snapshot);
    for (size_t i = 0; i < domains_.size(); ++i)
        refresh_bounds(static_cast<VarId>(i));
    entail_depth_.assign(entail_depth_.size(), kNotEntailed);
    refresh_arith_safety(); // bounds may have widened
    drain_queue();
}

void
PropagationEngine::touch(VarId id)
{
    enqueue_watchers(id);
}

void
PropagationEngine::enqueue_watchers(VarId id, bool bounds_changed)
{
    auto wake = [&](int ci) {
        if (queued_[static_cast<size_t>(ci)] || ci == revising_ci_)
            return;
        if (!bounds_changed && bounds_only_[static_cast<size_t>(ci)])
            return;
        if (constraint_entailed(ci))
            return;
        queued_[static_cast<size_t>(ci)] = true;
        queue_.push_back(ci);
    };
    const size_t v = static_cast<size_t>(id);
    const int32_t *it = watch_flat_.data() + watch_off_[v];
    const int32_t *end = watch_flat_.data() + watch_off_[v + 1];
    for (; it != end; ++it)
        wake(*it);
    if (has_extras_)
        for (int ci : extra_watchers_[v])
            wake(ci);
}

void
PropagationEngine::drain_queue()
{
    for (size_t i = queue_head_; i < queue_.size(); ++i)
        queued_[static_cast<size_t>(queue_[i])] = false;
    queue_.clear();
    queue_head_ = 0;
}

void
PropagationEngine::push_level()
{
    level_marks_.push_back(trail_size_);
    ++epoch_;
    level_tokens_.push_back(epoch_);
}

void
PropagationEngine::pop_level()
{
    HERON_CHECK(!level_marks_.empty());
    size_t mark = level_marks_.back();
    level_marks_.pop_back();
    level_tokens_.pop_back();
    while (trail_size_ > mark) {
        // Copy (not move) so the pooled entry keeps its buffer for
        // the next save; the target's capacity already fits because
        // the entry was copied from it.
        TrailEntry &entry = trail_[--trail_size_];
        domains_[static_cast<size_t>(entry.var)] = entry.saved;
        refresh_bounds(entry.var);
    }
    // A conflicting propagate() can leave work queued; the queued
    // revisions refer to the popped state, so drop them.
    drain_queue();
    // Bump the epoch so save-marks taken inside the popped scope
    // (or in the parent before this scope opened) are stale and the
    // next mutation re-records.
    ++epoch_;
}

void
PropagationEngine::pop_to_depth(size_t depth)
{
    while (level_marks_.size() > depth)
        pop_level();
}

bool
PropagationEngine::push_extras(const std::vector<Constraint> &extra)
{
    HERON_CHECK(!has_extras_) << "extras already pushed";
    HERON_CHECK(level_marks_.empty())
        << "push_extras() above decision levels";
    has_extras_ = true;
    extra_watch_vars_.clear();
    for (const auto &c : extra) {
        int ci = static_cast<int>(all_constraints_.size());
        all_constraints_.push_back(&c);
        for_each_watch(c, [&](VarId v) {
            extra_watchers_[static_cast<size_t>(v)].push_back(ci);
            extra_watch_vars_.push_back(v);
        });
        arith_safe_.push_back(compute_arith_safe(c));
        bounds_only_.push_back(c.kind == ConstraintKind::kProd ||
                               c.kind == ConstraintKind::kSum ||
                               c.kind == ConstraintKind::kLe);
        queued_.push_back(false);
        entail_depth_.push_back(kNotEntailed);
        entail_token_.push_back(0);
        reserve_scratch(c.operands.size());
    }
    push_level();
    for (size_t ci = base_constraint_count_;
         ci < all_constraints_.size(); ++ci) {
        if (!queued_[ci]) {
            queued_[ci] = true;
            queue_.push_back(static_cast<int>(ci));
        }
    }
    return propagate();
}

void
PropagationEngine::pop_extras()
{
    HERON_CHECK(has_extras_);
    HERON_CHECK_EQ(level_marks_.size(), size_t{1})
        << "pop decision levels before pop_extras()";
    pop_level();
    for (VarId v : extra_watch_vars_)
        extra_watchers_[static_cast<size_t>(v)].pop_back();
    extra_watch_vars_.clear();
    all_constraints_.resize(base_constraint_count_);
    arith_safe_.resize(base_constraint_count_);
    bounds_only_.resize(base_constraint_count_);
    queued_.resize(base_constraint_count_);
    entail_depth_.resize(base_constraint_count_);
    entail_token_.resize(base_constraint_count_);
    has_extras_ = false;
}

bool
PropagationEngine::save(VarId id)
{
    if (level_marks_.empty())
        return false; // base state: mutations are permanent
    uint64_t &mark = saved_epoch_[static_cast<size_t>(id)];
    if (mark == epoch_)
        return false; // already recorded for this segment
    mark = epoch_;
    if (trail_size_ == trail_.size())
        trail_.emplace_back();
    TrailEntry &e = trail_[trail_size_++];
    e.var = id;
    e.saved = domains_[static_cast<size_t>(id)]; // reuses capacity
    return true;
}

bool
PropagationEngine::propagate()
{
    HERON_COUNTER_INC("csp.propagations");
    ++stats_.propagations;
    while (queue_head_ < queue_.size()) {
        int ci = queue_.back();
        queue_.pop_back();
        queued_[static_cast<size_t>(ci)] = false;
        const Constraint &c =
            *all_constraints_[static_cast<size_t>(ci)];
        ++stats_.revisions;
        if (!revise(c, ci)) {
            HERON_COUNTER_INC("csp.domain_wipeouts");
            count_constraint_failure(c.kind);
            return false;
        }
    }
    queue_.clear();
    queue_head_ = 0;
    // A root-level fixpoint permanently tightens every bound below
    // its build/restore state; re-derive overflow safety so PROD
    // constraints whose *initial* bounds were too wide for the raw
    // arithmetic path can graduate onto it.
    if (level_marks_.empty())
        refresh_arith_safety();
    return true;
}

bool
PropagationEngine::assign_and_propagate(VarId id, int64_t value)
{
    if (!try_assign(id, value))
        return false;
    return propagate();
}

bool
PropagationEngine::all_assigned() const
{
    for (const auto &d : domains_)
        if (!d.is_singleton())
            return false;
    return true;
}

Assignment
PropagationEngine::extract() const
{
    Assignment a(domains_.size());
    for (size_t i = 0; i < domains_.size(); ++i) {
        HERON_CHECK(domains_[i].is_singleton())
            << "variable " << csp_.var(static_cast<VarId>(i)).name
            << " not assigned";
        a[i] = domains_[i].value();
    }
    return a;
}

bool
PropagationEngine::clamp(VarId id, int64_t lo, int64_t hi)
{
    const int64_t cur_min = var_min_[static_cast<size_t>(id)];
    const int64_t cur_max = var_max_[static_cast<size_t>(id)];
    if (cur_min > cur_max)
        return false;
    if (cur_min >= lo && cur_max <= hi)
        return true; // no change, nothing to trail or wake
    save(id);
    Domain &d = domains_[static_cast<size_t>(id)];
    d.restrict_bounds(lo, hi);
    refresh_bounds(id);
    enqueue_watchers(id);
    return !d.empty();
}

bool
PropagationEngine::try_assign(VarId id, int64_t value)
{
    Domain &d = domains_[static_cast<size_t>(id)];
    if (!d.contains(value))
        return false;
    if (!d.is_singleton()) {
        save(id);
        d.assign(value);
        refresh_bounds(id);
        enqueue_watchers(id);
    }
    return true;
}

void
PropagationEngine::remove_value(VarId id, int64_t value)
{
    Domain &d = domains_[static_cast<size_t>(id)];
    if (!d.contains(value))
        return;
    const size_t i = static_cast<size_t>(id);
    const int64_t old_min = var_min_[i], old_max = var_max_[i];
    save(id);
    d.remove(value);
    refresh_bounds(id);
    enqueue_watchers(id, var_min_[i] != old_min ||
                             var_max_[i] != old_max);
}

bool
PropagationEngine::intersect_with(VarId id, const Domain &other)
{
    // Change detection needs the mutation itself, so trail first and
    // retract the entry when nothing changed.
    const size_t i = static_cast<size_t>(id);
    const int64_t old_min = var_min_[i], old_max = var_max_[i];
    bool fresh = save(id);
    bool changed = domains_[static_cast<size_t>(id)].intersect(other);
    if (changed) {
        refresh_bounds(id);
        enqueue_watchers(id, var_min_[i] != old_min ||
                                 var_max_[i] != old_max);
    } else if (fresh) {
        --trail_size_; // retract the pooled entry, keep its buffer
        saved_epoch_[static_cast<size_t>(id)] = kNoEpoch;
    }
    return changed;
}

bool
PropagationEngine::intersect_values_with(
    VarId id, const std::vector<int64_t> &values)
{
    const size_t i = static_cast<size_t>(id);
    const int64_t old_min = var_min_[i], old_max = var_max_[i];
    bool fresh = save(id);
    bool changed = domains_[static_cast<size_t>(id)].intersect_values(
        values);
    if (changed) {
        refresh_bounds(id);
        enqueue_watchers(id, var_min_[i] != old_min ||
                                 var_max_[i] != old_max);
    } else if (fresh) {
        --trail_size_; // retract the pooled entry, keep its buffer
        saved_epoch_[static_cast<size_t>(id)] = kNoEpoch;
    }
    return changed;
}

bool
PropagationEngine::revise(const Constraint &c, int ci)
{
    // A constraint queued before it became entailed may still be
    // dequeued afterwards; answer it here without running a filter.
    if (constraint_entailed(ci))
        return true;
    bool ok = false;
    switch (c.kind) {
      case ConstraintKind::kProd:
      case ConstraintKind::kSum:
      case ConstraintKind::kEq:
      case ConstraintKind::kLe:
      case ConstraintKind::kIn:
        // These filters exit at their own fixpoint, so mutations
        // they make to their own watched variables need not wake
        // them again. SELECT's doesn't (selector pruning can enable
        // further result pruning only on a later pass), so it keeps
        // self-wakes.
        revising_ci_ = ci;
        break;
      case ConstraintKind::kSelect:
        break;
    }
    switch (c.kind) {
      case ConstraintKind::kProd: ok = revise_prod(c, ci); break;
      case ConstraintKind::kSum: ok = revise_sum(c, ci); break;
      case ConstraintKind::kEq: ok = revise_eq(c, ci); break;
      case ConstraintKind::kLe: ok = revise_le(c, ci); break;
      case ConstraintKind::kIn: ok = revise_in(c, ci); break;
      case ConstraintKind::kSelect: ok = revise_select(c, ci); break;
    }
    revising_ci_ = -1;
    return ok;
}

bool
PropagationEngine::revise_prod(const Constraint &c, int ci)
{
    return arith_safe_[static_cast<size_t>(ci)]
               ? revise_prod_impl<true>(c, ci)
               : revise_prod_impl<false>(c, ci);
}

template <bool Safe>
bool
PropagationEngine::revise_prod_impl(const Constraint &c, int ci)
{
    // All product operands are non-negative in Heron-generated
    // problems (tile sizes, loop lengths, byte counts). With
    // Safe == true this — and freedom from overflow — was proven
    // from the initial bounds at registration, so the folds below
    // compile to raw multiplies.
    auto mul = [](int64_t a, int64_t b) {
        if constexpr (Safe)
            return a * b;
        else
            return checked_mul(a, b);
    };
    const size_t n = c.operands.size();
    const size_t rv = static_cast<size_t>(c.result);
    if (var_min_[rv] > var_max_[rv])
        return false;

    // The filter repeats until it stops pruning its own operands:
    // one pass uses suffix products computed before that pass's
    // clamps, so a pass that prunes may enable further pruning. The
    // loop replaces re-enqueueing this constraint for a whole fresh
    // revision (revise() suppresses self-wakes).
    bool all_fixed;
    for (;;) {
        // One backward pass caches every operand's bounds and builds
        // the suffix products off the flat bound caches. The product
        // fold is associative (checked_mul absorbs zero before
        // saturating), so assembling "product of all j != i" from a
        // suffix array and a running prefix is exact and O(n) total
        // instead of the naive O(n^2) folds.
        scratch_suf_min_[n] = 1;
        scratch_suf_max_[n] = 1;
        all_fixed = true;
        for (size_t i = n; i-- > 0;) {
            const size_t op = static_cast<size_t>(c.operands[i]);
            if (var_min_[op] > var_max_[op])
                return false;
            if constexpr (!Safe) {
                HERON_CHECK_GE(var_min_[op], 0)
                    << "PROD operand may be negative: "
                    << csp_.var(c.operands[i]).name;
            }
            scratch_min_[i] = var_min_[op];
            scratch_max_[i] = var_max_[op];
            all_fixed =
                all_fixed && scratch_min_[i] == scratch_max_[i];
            scratch_suf_min_[i] =
                mul(scratch_suf_min_[i + 1], scratch_min_[i]);
            scratch_suf_max_[i] =
                mul(scratch_suf_max_[i + 1], scratch_max_[i]);
        }
        if (!clamp(c.result, scratch_suf_min_[0],
                   scratch_suf_max_[0]))
            return false;
        // Every operand fixed: the clamp above pinned the result to
        // the exact product, and no per-operand filtering can prune
        // further while the current level stays open.
        if (all_fixed) {
            mark_entailed(ci);
            return true;
        }
        const int64_t v_min = var_min_[rv], v_max = var_max_[rv];

        if constexpr (Safe) {
            // Free result: its bounds equal the interval product,
            // which makes every per-operand quotient bound at least
            // as loose as the operand's current bounds (lo_i =
            // ceil(min_i * others_min_i / others_max_i) <= min_i and
            // symmetrically for hi_i), and the exactness pass
            // vacuous. This is the common wake — an operand moved,
            // the result is a derived variable nothing else
            // constrains — and skipping the filter avoids n
            // divisions. Requires exact (unsaturated) suffix
            // products, hence Safe only.
            if (v_min == scratch_suf_min_[0] &&
                v_max == scratch_suf_max_[0])
                return true;
        }

        bool pruned_self = false;
        int64_t pre_min = 1, pre_max = 1;
        for (size_t i = 0; i < n; ++i) {
            int64_t others_min =
                mul(pre_min, scratch_suf_min_[i + 1]);
            int64_t others_max =
                mul(pre_max, scratch_suf_max_[i + 1]);
            int64_t lo = 0, hi = kInf;
            if (others_max > 0 && others_max != kInf && v_min > 0)
                lo = ceil_div(v_min, others_max);
            if (others_min > 0 && v_max != kInf)
                hi = v_max / others_min;
            if (lo > scratch_min_[i] || hi < scratch_max_[i]) {
                if (!clamp(c.operands[i], lo, hi))
                    return false;
                scratch_min_[i] =
                    var_min_[static_cast<size_t>(c.operands[i])];
                scratch_max_[i] =
                    var_max_[static_cast<size_t>(c.operands[i])];
                pruned_self = true;
            }
            pre_min = mul(pre_min, scratch_min_[i]);
            pre_max = mul(pre_max, scratch_max_[i]);
        }
        if (!pruned_self)
            break;
    }

    // Exactness: when all but at most one participant is fixed.
    size_t unassigned = 0;
    int64_t fixed_prod = 1;
    size_t open_idx = n;
    for (size_t i = 0; i < n; ++i) {
        if (scratch_min_[i] == scratch_max_[i]) {
            fixed_prod = mul(fixed_prod, scratch_min_[i]);
        } else {
            ++unassigned;
            open_idx = i;
        }
    }

    if (unassigned == 0)
        return try_assign(c.result, fixed_prod);
    if (unassigned == 1 && var_min_[rv] == var_max_[rv]) {
        int64_t target = var_min_[rv];
        VarId open = c.operands[open_idx];
        if (fixed_prod == 0) {
            // 0 * x == target requires target == 0; x unconstrained.
            return target == 0;
        }
        if (target % fixed_prod != 0)
            return false;
        return try_assign(open, target / fixed_prod);
    }
    return true;
}

bool
PropagationEngine::revise_sum(const Constraint &c, int ci)
{
    const size_t n = c.operands.size();
    const size_t rv = static_cast<size_t>(c.result);
    if (var_min_[rv] > var_max_[rv])
        return false;

    // As in revise_prod_impl: repeat until a pass stops pruning its
    // own operands, since revise() suppresses self-wakes.
    for (;;) {
        // Bound caches + totals in one pass; "sum of all j != i" is
        // then total minus the i-th term (addition is associative),
        // making the filter O(n) instead of O(n^2). Infinite upper
        // bounds are tracked by count so excluding one term stays
        // exact.
        int64_t min_sum = 0, max_sum = 0;
        size_t inf_count = 0;
        bool all_fixed = true;
        for (size_t i = 0; i < n; ++i) {
            const size_t op = static_cast<size_t>(c.operands[i]);
            if (var_min_[op] > var_max_[op])
                return false;
            scratch_min_[i] = var_min_[op];
            scratch_max_[i] = var_max_[op];
            all_fixed =
                all_fixed && scratch_min_[i] == scratch_max_[i];
            min_sum += scratch_min_[i];
            if (scratch_max_[i] == kInf)
                ++inf_count;
            else
                max_sum += scratch_max_[i];
        }
        if (!clamp(c.result, min_sum, inf_count > 0 ? kInf : max_sum))
            return false;
        // Every operand fixed: the result is pinned to the exact sum
        // and per-operand filtering cannot prune further while the
        // current level stays open.
        if (all_fixed) {
            mark_entailed(ci);
            return true;
        }
        const int64_t v_min = var_min_[rv], v_max = var_max_[rv];

        // Free result: bounds equal to the interval sum make every
        // per-operand difference bound at least as loose as the
        // operand's current bounds (lo_i = min_sum - others_max_i <=
        // min_i, hi_i = max_sum - others_min_i >= max_i), so the
        // filter below is a no-op. Common wake path for derived
        // byte/latency totals.
        if (v_min == min_sum &&
            v_max == (inf_count > 0 ? kInf : max_sum))
            return true;

        bool pruned_self = false;
        for (size_t i = 0; i < n; ++i) {
            int64_t others_min = min_sum - scratch_min_[i];
            bool others_max_inf =
                inf_count > (scratch_max_[i] == kInf ? 1u : 0u);
            int64_t others_max =
                max_sum -
                (scratch_max_[i] == kInf ? 0 : scratch_max_[i]);
            int64_t lo = others_max_inf
                             ? std::numeric_limits<int64_t>::min()
                             : v_min - others_max;
            int64_t hi = v_max == kInf ? kInf : v_max - others_min;
            if (lo > scratch_min_[i] || hi < scratch_max_[i]) {
                if (!clamp(c.operands[i], lo, hi))
                    return false;
                pruned_self = true;
            }
        }
        if (!pruned_self)
            return true;
    }
}

bool
PropagationEngine::revise_eq(const Constraint &c, int ci)
{
    VarId a = c.result;
    VarId b = c.operands[0];
    // Both singleton: decide on the flat bounds without touching the
    // heap-backed domains (the generic path below runs a full value
    // intersection each way).
    const size_t ai = static_cast<size_t>(a);
    const size_t bi = static_cast<size_t>(b);
    if (var_min_[ai] == var_max_[ai] &&
        var_min_[bi] == var_max_[bi]) {
        if (var_min_[ai] != var_min_[bi])
            return false;
        mark_entailed(ci);
        return true;
    }
    intersect_with(a, domains_[static_cast<size_t>(b)]);
    intersect_with(b, domains_[static_cast<size_t>(a)]);
    if (domains_[static_cast<size_t>(a)].empty() ||
        domains_[static_cast<size_t>(b)].empty())
        return false;
    // Both sides pinned to the same value: nothing left to filter
    // in this subtree.
    if (var_min_[static_cast<size_t>(a)] ==
            var_max_[static_cast<size_t>(a)] &&
        var_min_[static_cast<size_t>(b)] ==
            var_max_[static_cast<size_t>(b)])
        mark_entailed(ci);
    return true;
}

bool
PropagationEngine::revise_le(const Constraint &c, int ci)
{
    const size_t a = static_cast<size_t>(c.result);
    const size_t b = static_cast<size_t>(c.operands[0]);
    if (var_min_[a] > var_max_[a] || var_min_[b] > var_max_[b])
        return false;
    if (!clamp(c.result, std::numeric_limits<int64_t>::min(),
               var_max_[b]))
        return false;
    if (!clamp(c.operands[0], var_min_[a], kInf))
        return false;
    // a.max <= b.min: both clamps stay no-ops under any further
    // shrinking, so the constraint is entailed for this subtree.
    if (var_max_[a] <= var_min_[b])
        mark_entailed(ci);
    return true;
}

bool
PropagationEngine::revise_in(const Constraint &c, int ci)
{
    // Once applied, the result domain only ever shrinks (and
    // backtracking never climbs above a post-application state), so
    // the subset relation — and with it this constraint's filtering
    // — holds for the constraint's registered lifetime.
    intersect_values_with(c.result, c.constants);
    if (domains_[static_cast<size_t>(c.result)].empty())
        return false;
    entail_depth_[static_cast<size_t>(ci)] = kPermanentEntailed;
    return true;
}

bool
PropagationEngine::revise_select(const Constraint &c, int ci)
{
    const int64_t n = static_cast<int64_t>(c.operands.size());
    if (!clamp(c.selector, 0, n - 1))
        return false;
    const Domain &du = domains_[static_cast<size_t>(c.selector)];
    const Domain &dv = domains_[static_cast<size_t>(c.result)];
    if (du.empty() || dv.empty())
        return false;

    // Prune selector values whose selected variable cannot equal v.
    if (du.is_explicit() || du.size() <= 64) {
        for (int64_t u : du.values()) {
            const Domain &dop =
                domains_[static_cast<size_t>(c.operands[static_cast<size_t>(u)])];
            bool feasible =
                !dop.empty() && dop.max() >= dv.min() && dop.min() <= dv.max();
            if (!feasible)
                remove_value(c.selector, u);
        }
        if (du.empty())
            return false;
    }

    // v is bounded by the union of candidate operand bounds.
    int64_t lo = kInf, hi = std::numeric_limits<int64_t>::min();
    for (int64_t u : du.values()) {
        const Domain &dop =
            domains_[static_cast<size_t>(c.operands[static_cast<size_t>(u)])];
        if (dop.empty())
            return false;
        lo = std::min(lo, dop.min());
        hi = std::max(hi, dop.max());
    }
    if (!clamp(c.result, lo, hi))
        return false;

    // Fixed selector degenerates to EQ(v, op_u).
    if (du.is_singleton()) {
        VarId op = c.operands[static_cast<size_t>(du.value())];
        intersect_with(c.result, domains_[static_cast<size_t>(op)]);
        intersect_with(op, domains_[static_cast<size_t>(c.result)]);
        if (domains_[static_cast<size_t>(c.result)].empty() ||
            domains_[static_cast<size_t>(op)].empty())
            return false;
        // Selector fixed and both ends pinned: with the selector a
        // singleton the filter only ever touches (selector, result,
        // op_u), all now immutable in this subtree.
        if (var_min_[static_cast<size_t>(c.result)] ==
                var_max_[static_cast<size_t>(c.result)] &&
            var_min_[static_cast<size_t>(op)] ==
                var_max_[static_cast<size_t>(op)])
            mark_entailed(ci);
        return true;
    }
    return true;
}

} // namespace heron::csp
