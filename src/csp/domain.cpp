#include "csp/domain.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/logging.h"

namespace heron::csp {

Domain::Domain() : explicit_(false), lo_(1), hi_(0) {}

Domain
Domain::singleton(int64_t value)
{
    return interval(value, value);
}

Domain
Domain::interval(int64_t lo, int64_t hi)
{
    Domain d;
    d.explicit_ = false;
    d.lo_ = lo;
    d.hi_ = hi;
    return d;
}

Domain
Domain::of(std::vector<int64_t> values)
{
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    Domain d;
    d.explicit_ = true;
    d.set_ = std::move(values);
    return d;
}







bool
Domain::contains(int64_t v) const
{
    if (explicit_)
        return std::binary_search(set_.begin(), set_.end(), v);
    return v >= lo_ && v <= hi_;
}

bool
Domain::restrict_bounds(int64_t lo, int64_t hi)
{
    if (explicit_) {
        size_t before = set_.size();
        auto first = std::lower_bound(set_.begin(), set_.end(), lo);
        auto last = std::upper_bound(first, set_.end(), hi);
        if (first == set_.begin() && last == set_.end())
            return false;
        set_.assign(first, last);
        return set_.size() != before;
    }
    int64_t new_lo = std::max(lo_, lo);
    int64_t new_hi = std::min(hi_, hi);
    bool changed = new_lo != lo_ || new_hi != hi_;
    lo_ = new_lo;
    hi_ = new_hi;
    return changed;
}

bool
Domain::assign(int64_t v)
{
    if (!contains(v)) {
        // Wipe out.
        bool was_empty = empty();
        explicit_ = false;
        lo_ = 1;
        hi_ = 0;
        return !was_empty;
    }
    if (is_singleton())
        return false;
    explicit_ = false;
    lo_ = v;
    hi_ = v;
    return true;
}

bool
Domain::remove(int64_t v)
{
    if (!contains(v))
        return false;
    if (explicit_) {
        auto it = std::lower_bound(set_.begin(), set_.end(), v);
        set_.erase(it);
        return true;
    }
    if (lo_ == hi_) {
        hi_ = lo_ - 1;
        return true;
    }
    if (v == lo_) {
        ++lo_;
        return true;
    }
    if (v == hi_) {
        --hi_;
        return true;
    }
    // Removing an interior interval value would need a gap; fall back
    // to materializing. Interior removal only happens on small
    // domains in practice.
    HERON_CHECK_LE(hi_ - lo_, int64_t{1} << 20);
    std::vector<int64_t> vals;
    vals.reserve(static_cast<size_t>(hi_ - lo_));
    for (int64_t x = lo_; x <= hi_; ++x)
        if (x != v)
            vals.push_back(x);
    explicit_ = true;
    set_ = std::move(vals);
    return true;
}

bool
Domain::intersect_values(const std::vector<int64_t> &values)
{
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    std::vector<int64_t> kept;
    for (int64_t v : sorted)
        if (contains(v))
            kept.push_back(v);
    bool changed = !explicit_ ||
                   kept.size() != set_.size();
    explicit_ = true;
    set_ = std::move(kept);
    return changed;
}

bool
Domain::intersect_sorted(const std::vector<int64_t> &values)
{
    if (explicit_) {
        // In-place two-pointer sweep over two sorted unique lists:
        // no allocation, no re-sort. This is the EQ propagator's
        // inner loop.
        size_t w = 0, i = 0, j = 0;
        const size_t n = set_.size(), m = values.size();
        while (i < n && j < m) {
            if (set_[i] < values[j]) {
                ++i;
            } else if (values[j] < set_[i]) {
                ++j;
            } else {
                set_[w++] = set_[i];
                ++i;
                ++j;
            }
        }
        bool changed = w != n;
        set_.resize(w);
        return changed;
    }
    std::vector<int64_t> kept;
    kept.reserve(values.size());
    for (int64_t v : values)
        if (v >= lo_ && v <= hi_)
            kept.push_back(v);
    explicit_ = true;
    set_ = std::move(kept);
    // Representation change counts as a change, matching
    // intersect_values.
    return true;
}

bool
Domain::intersect(const Domain &other)
{
    if (!other.explicit_)
        return restrict_bounds(other.lo_, other.hi_);
    // set_ is maintained sorted and unique by every mutator.
    return intersect_sorted(other.set_);
}

bool
Domain::filter(const std::function<bool(int64_t)> &pred)
{
    HERON_CHECK(explicit_);
    size_t before = set_.size();
    set_.erase(std::remove_if(set_.begin(), set_.end(),
                              [&](int64_t v) { return !pred(v); }),
               set_.end());
    return set_.size() != before;
}

std::vector<int64_t>
Domain::values() const
{
    if (explicit_)
        return set_;
    HERON_CHECK(!empty());
    HERON_CHECK_LE(hi_ - lo_, int64_t{1} << 20);
    std::vector<int64_t> vals;
    vals.reserve(static_cast<size_t>(hi_ - lo_ + 1));
    for (int64_t x = lo_; x <= hi_; ++x)
        vals.push_back(x);
    return vals;
}

std::string
Domain::to_string() const
{
    std::ostringstream out;
    if (empty())
        return "{}";
    if (explicit_) {
        out << "{";
        for (size_t i = 0; i < set_.size(); ++i)
            out << (i ? "," : "") << set_[i];
        out << "}";
    } else {
        out << "[" << lo_ << ".." << hi_ << "]";
    }
    return out.str();
}

} // namespace heron::csp
