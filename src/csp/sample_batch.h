/**
 * @file
 * Deterministic parallel population sampling.
 *
 * CGA and the tuner draw whole populations of random valid
 * assignments at once. SampleBatch fans those draws out over a
 * fixed-size worker pool while keeping the result *bit-identical
 * for any worker count*, so turning parallelism on can never change
 * a tuning trajectory.
 *
 * Determinism contract: the returned assignments (values and order)
 * depend only on (seed, n, extra) — never on the worker count or on
 * thread scheduling. This holds because:
 *  - work is split into numbered slots; slot s always uses the RNG
 *    stream Rng::for_stream(seed, s), which is independent of which
 *    worker runs it and of every other slot;
 *  - slots are assigned statically (slot s -> worker s % workers),
 *    and each worker writes only its own slots' result cells;
 *  - the merge walks slots in increasing order, deduplicates by
 *    assignment hash, and stops at the first failed slot — exactly
 *    the sequential solve_n semantics;
 *  - slot waves are sized by merge results only (deficit-driven),
 *    so the *set* of slots solved is also worker-count invariant,
 *    which makes the aggregate solver statistics invariant too. The
 *    per-worker solvers run with the UNSAT memo disabled for the
 *    same reason: a memo hit changes counters depending on which
 *    slots a worker happened to serve earlier.
 */
#ifndef HERON_CSP_SAMPLE_BATCH_H
#define HERON_CSP_SAMPLE_BATCH_H

#include <cstdint>
#include <memory>
#include <vector>

#include "csp/solver.h"

namespace heron::csp {

/**
 * Parallel front-end over per-worker RandSatSolver instances.
 *
 * Each worker owns a persistent solver (and thus a memoized root
 * fixpoint), so batches are cheap after the first. The object itself
 * is not thread-safe; it *creates* threads internally per batch.
 */
class SampleBatch
{
  public:
    /**
     * @param workers worker-pool size (clamped to >= 1). Workers are
     *        created lazily on the first sample() call.
     */
    explicit SampleBatch(const Csp &csp, SolverConfig config = {},
                         int workers = 1);

    /**
     * Draw up to @p n distinct random valid assignments of the base
     * problem plus @p extra. Fewer may be returned when the
     * subproblem is tight or a slot fails (UNSAT/budget/deadline) —
     * mirroring RandSatSolver::solve_n, the merge stops at the first
     * failed slot.
     *
     * The result is a pure function of (seed, n, extra): bit-equal
     * across worker counts and repeat calls.
     */
    std::vector<Assignment>
    sample(uint64_t seed, int n,
           const std::vector<Constraint> &extra = {});

    /**
     * Aggregate statistics over all workers, worker-count invariant
     * (see the determinism contract above). solve_calls counts
     * slots, not sample() invocations.
     */
    SolverStats stats() const;

    /**
     * Failure reason of the first failed slot of the most recent
     * sample() call (kNone when every merged slot succeeded). Used
     * by callers to distinguish a barren subspace from an exhausted
     * budget.
     */
    SolveFailure last_failure() const { return last_failure_; }

    /** Worker-pool size. */
    int workers() const { return workers_; }

    /** The problem the batch samples from. */
    const Csp &csp() const { return csp_; }

  private:
    const Csp &csp_;
    SolverConfig config_;
    int workers_;
    /** Lazily created; index w serves slots with s % workers_ == w. */
    std::vector<std::unique_ptr<RandSatSolver>> solvers_;
    SolveFailure last_failure_ = SolveFailure::kNone;

    void ensure_solvers();

    /**
     * Solve slots [begin, end) into @p results / @p failures (cells
     * indexed by slot). Runs the static slot->worker partition on
     * threads when workers_ > 1.
     */
    void run_wave(uint64_t seed, size_t begin, size_t end,
                  const std::vector<Constraint> &extra,
                  std::vector<std::optional<Assignment>> *results,
                  std::vector<SolveFailure> *failures);
};

} // namespace heron::csp

#endif // HERON_CSP_SAMPLE_BATCH_H
