/**
 * @file
 * Deterministic parallel population sampling.
 *
 * CGA and the tuner draw whole populations of random valid
 * assignments at once. SampleBatch fans those draws out over a
 * persistent worker pool while keeping the result *bit-identical
 * for any worker count*, so turning parallelism on can never change
 * a tuning trajectory.
 *
 * Determinism contract: the returned assignments (values and order)
 * depend only on (seed, n, extra) — never on the worker count or on
 * thread scheduling. This holds because:
 *  - work is split into numbered slots; slot s always uses the RNG
 *    stream Rng::for_stream(seed, s), which is independent of which
 *    worker runs it and of every other slot;
 *  - slots are assigned statically (slot s -> worker s % workers),
 *    and each worker writes only its own slots' result cells;
 *  - the merge walks slots in increasing order, deduplicates by
 *    assignment hash, and stops at the first failed slot — exactly
 *    the sequential solve_n semantics;
 *  - slot waves are sized by merge results only (deficit-driven),
 *    so the *set* of slots solved is also worker-count invariant,
 *    which makes the aggregate solver statistics invariant too. The
 *    per-worker solvers run with the UNSAT memo disabled for the
 *    same reason: a memo hit changes counters depending on which
 *    slots a worker happened to serve earlier.
 *
 * Pool lifecycle: worker threads are spawned once, on the first
 * multi-worker wave, and parked on a condition variable between
 * waves; the calling thread always participates as worker 0. Each
 * worker keeps its RandSatSolver — and with it the memoized root
 * fixpoint, trail pool, and domain storage — warm on the same
 * thread across waves, sample() calls, and CGA generations, so the
 * steady-state per-wave cost is one wakeup instead of thread
 * creation plus a cold solver.
 */
#ifndef HERON_CSP_SAMPLE_BATCH_H
#define HERON_CSP_SAMPLE_BATCH_H

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "csp/solver.h"
#include "support/arena.h"

namespace heron::csp {

/**
 * Parallel front-end over per-worker RandSatSolver instances.
 *
 * The object itself is not thread-safe (one sample() at a time);
 * it *owns* a persistent internal thread pool used by every batch.
 */
class SampleBatch
{
  public:
    /**
     * @param workers worker-pool size (clamped to >= 1). Solvers
     *        are created lazily on the first sample() call; pool
     *        threads on the first multi-worker wave.
     */
    explicit SampleBatch(const Csp &csp, SolverConfig config = {},
                         int workers = 1);

    /** Stops and joins the worker pool. */
    ~SampleBatch();

    SampleBatch(const SampleBatch &) = delete;
    SampleBatch &operator=(const SampleBatch &) = delete;

    /**
     * Draw up to @p n distinct random valid assignments of the base
     * problem plus @p extra. Fewer may be returned when the
     * subproblem is tight or a slot fails (UNSAT/budget/deadline) —
     * mirroring RandSatSolver::solve_n, the merge stops at the first
     * failed slot.
     *
     * The result is a pure function of (seed, n, extra): bit-equal
     * across worker counts and repeat calls.
     */
    std::vector<Assignment>
    sample(uint64_t seed, int n,
           const std::vector<Constraint> &extra = {});

    /**
     * Aggregate statistics over all workers, worker-count invariant
     * (see the determinism contract above). solve_calls counts
     * slots, not sample() invocations.
     */
    SolverStats stats() const;

    /**
     * Failure reason of the first failed slot of the most recent
     * sample() call (kNone when every merged slot succeeded). Used
     * by callers to distinguish a barren subspace from an exhausted
     * budget.
     */
    SolveFailure last_failure() const { return last_failure_; }

    /** Worker-pool size. */
    int workers() const { return workers_; }

    /** True once pool threads have been spawned. */
    bool pool_started() const { return !threads_.empty(); }

    /** The problem the batch samples from. */
    const Csp &csp() const { return csp_; }

  private:
    const Csp &csp_;
    SolverConfig config_;
    int workers_;
    /** Lazily created; index w serves slots with s % workers_ == w. */
    std::vector<std::unique_ptr<RandSatSolver>> solvers_;
    SolveFailure last_failure_ = SolveFailure::kNone;

    // ---- Persistent pool (workers 1..workers_-1; the caller runs
    // worker 0 inline). The wave_* task fields are written by the
    // caller and read by workers under pool_mu_.
    std::vector<std::thread> threads_;
    std::mutex pool_mu_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    uint64_t wave_gen_ = 0;
    int outstanding_ = 0;
    bool stop_ = false;
    uint64_t wave_seed_ = 0;
    size_t wave_begin_ = 0;
    size_t wave_end_ = 0;
    const std::vector<Constraint> *wave_extra_ = nullptr;
    std::vector<std::optional<Assignment>> *wave_results_ = nullptr;
    std::vector<SolveFailure> *wave_failures_ = nullptr;

    // ---- Per-call scratch, reused so a warmed-up batch allocates
    // nothing per sample() beyond the returned assignments. The
    // dedup set lives in an arena reset at the top of each call
    // (destroy-then-reset: see support/arena.h ownership rules).
    std::vector<std::optional<Assignment>> results_;
    std::vector<SolveFailure> failures_;
    using SeenSet =
        std::unordered_set<uint64_t, std::hash<uint64_t>,
                           std::equal_to<uint64_t>,
                           support::ArenaAllocator<uint64_t>>;
    support::Arena seen_arena_;
    std::optional<SeenSet> seen_;

    void ensure_solvers();
    void ensure_threads();
    /** Worker w's residue-class loop over [begin, end). */
    void solve_slots(int w, uint64_t seed, size_t begin, size_t end,
                     const std::vector<Constraint> &extra,
                     std::vector<std::optional<Assignment>> *results,
                     std::vector<SolveFailure> *failures);
    void worker_loop(int w);

    /**
     * Solve slots [begin, end) into @p results / @p failures (cells
     * indexed by slot). Dispatches the static slot->worker
     * partition onto the persistent pool when workers_ > 1.
     */
    void run_wave(uint64_t seed, size_t begin, size_t end,
                  const std::vector<Constraint> &extra,
                  std::vector<std::optional<Assignment>> *results,
                  std::vector<SolveFailure> *failures);
};

} // namespace heron::csp

#endif // HERON_CSP_SAMPLE_BATCH_H
