/**
 * @file
 * The Heron cost model (paper §3, Cost Model module).
 *
 * Features are the values of the variables defined during
 * constraint generation (loop lengths, vector lengths, memory
 * usage, ...), which are available without compiling anything. The
 * model predicts a throughput score from a CSP assignment and
 * exposes feature-importance-ranked key variables for CGA's
 * constraint-based crossover.
 */
#ifndef HERON_MODEL_COST_MODEL_H
#define HERON_MODEL_COST_MODEL_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "csp/csp.h"
#include "model/gbdt.h"
#include "support/arena.h"

namespace heron::model {

/** Cost model over one generated space's CSP variables. */
class CostModel
{
  public:
    explicit CostModel(const csp::Csp &csp, GbdtParams params = {});

    /** log2-scaled feature vector of an assignment. */
    std::vector<float> features(const csp::Assignment &a) const;

    /**
     * features(a) memoized by assignment hash. predict() and the
     * sample recorders route through this cache, so a candidate
     * predicted across several CGA generations (or recorded after
     * being predicted) pays for feature extraction once. The cache
     * is bounded: it is reset wholesale at a fixed cap. Vector
     * storage comes out of an arena reset together with the cache,
     * so steady-state memoization does zero malloc traffic. The
     * returned view is valid until the next cached_features() call
     * (a cap overflow resets the arena).
     */
    std::span<const float>
    cached_features(const csp::Assignment &a) const;

    /**
     * Record a measurement. Invalid programs score 0; valid ones
     * score log2(1 + total_ops/latency).
     */
    void add_sample(const csp::Assignment &a, bool valid,
                    double latency_ms, int64_t total_ops);

    /** Record a measurement by its precomputed throughput score. */
    void add_scored_sample(const csp::Assignment &a, double score);

    /** Retrain on all recorded samples. */
    void fit();

    /** Predicted score (higher is better). */
    double predict(const csp::Assignment &a) const;

    /** True once fit() has run on at least a few samples. */
    bool trained() const { return model_.trained(); }

    /** Number of recorded samples. */
    size_t num_samples() const { return data_.size(); }

    /**
     * The top-k variables by feature importance (CGA key-variable
     * extraction). Falls back to tunable variables when untrained.
     */
    std::vector<csp::VarId> key_variables(int k) const;

    /** The underlying regressor (for diagnostics). */
    const GbdtRegressor &regressor() const { return model_; }

  private:
    const csp::Csp &csp_;
    GbdtRegressor model_;
    Dataset data_;
    // Cached feature vectors live in the arena; the map holds views.
    // Overflow handling must clear the map *before* resetting the
    // arena (see support/arena.h ownership rules).
    mutable support::Arena feature_arena_;
    mutable std::unordered_map<uint64_t, std::span<const float>>
        feature_cache_;
};

/** The score used as GA fitness: log2(1 + GFLOP/s); 0 if invalid. */
double throughput_score(bool valid, double latency_ms,
                        int64_t total_ops);

} // namespace heron::model

#endif // HERON_MODEL_COST_MODEL_H
