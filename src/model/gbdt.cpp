#include "model/gbdt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.h"

namespace heron::model {

namespace {

/** Mean of residuals over rows. */
float
mean_of(const std::vector<float> &residual,
        const std::vector<int> &rows)
{
    if (rows.empty())
        return 0.0f;
    double sum = 0.0;
    for (int r : rows)
        sum += residual[static_cast<size_t>(r)];
    return static_cast<float>(sum / static_cast<double>(rows.size()));
}

} // namespace

int
RegressionTree::build(const Dataset &data,
                      const std::vector<float> &residual,
                      std::vector<int> rows, int depth,
                      const GbdtParams &params, Rng &rng,
                      std::vector<double> &gain)
{
    Node node;
    node.value = mean_of(residual, rows);
    int index = static_cast<int>(nodes_.size());
    nodes_.push_back(node);

    if (depth >= params.max_depth ||
        static_cast<int>(rows.size()) < 2 * params.min_samples_leaf)
        return index;

    // Total sum/count for SSE gain computation.
    double total_sum = 0.0;
    for (int r : rows)
        total_sum += residual[static_cast<size_t>(r)];
    double n = static_cast<double>(rows.size());
    double parent_score = total_sum * total_sum / n;

    // Candidate features (random subset).
    size_t num_features = data.num_features();
    std::vector<int> features(num_features);
    std::iota(features.begin(), features.end(), 0);
    rng.shuffle(features);
    size_t take = std::max<size_t>(
        1, static_cast<size_t>(params.feature_subsample *
                               static_cast<double>(num_features)));
    features.resize(take);

    double best_gain = 1e-9;
    int best_feature = -1;
    float best_threshold = 0.0f;

    std::vector<int> sorted = rows;
    for (int f : features) {
        std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
            return data.x[static_cast<size_t>(a)]
                         [static_cast<size_t>(f)] <
                   data.x[static_cast<size_t>(b)]
                         [static_cast<size_t>(f)];
        });
        double left_sum = 0.0;
        for (size_t i = 0; i + 1 < sorted.size(); ++i) {
            left_sum += residual[static_cast<size_t>(sorted[i])];
            float cur = data.x[static_cast<size_t>(sorted[i])]
                              [static_cast<size_t>(f)];
            float next = data.x[static_cast<size_t>(sorted[i + 1])]
                               [static_cast<size_t>(f)];
            if (cur == next)
                continue;
            size_t left_n = i + 1;
            size_t right_n = sorted.size() - left_n;
            if (static_cast<int>(left_n) < params.min_samples_leaf ||
                static_cast<int>(right_n) < params.min_samples_leaf)
                continue;
            double right_sum = total_sum - left_sum;
            double score =
                left_sum * left_sum / static_cast<double>(left_n) +
                right_sum * right_sum / static_cast<double>(right_n);
            double split_gain = score - parent_score;
            if (split_gain > best_gain) {
                best_gain = split_gain;
                best_feature = f;
                best_threshold = (cur + next) * 0.5f;
            }
        }
    }

    if (best_feature < 0)
        return index;

    std::vector<int> left_rows, right_rows;
    for (int r : rows) {
        if (data.x[static_cast<size_t>(r)]
                  [static_cast<size_t>(best_feature)] <=
            best_threshold)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    HERON_CHECK(!left_rows.empty() && !right_rows.empty());

    gain[static_cast<size_t>(best_feature)] += best_gain;
    nodes_[static_cast<size_t>(index)].feature = best_feature;
    nodes_[static_cast<size_t>(index)].threshold = best_threshold;
    int left = build(data, residual, std::move(left_rows), depth + 1,
                     params, rng, gain);
    int right = build(data, residual, std::move(right_rows),
                      depth + 1, params, rng, gain);
    nodes_[static_cast<size_t>(index)].left = left;
    nodes_[static_cast<size_t>(index)].right = right;
    return index;
}

void
RegressionTree::fit(const Dataset &data,
                    const std::vector<float> &residual,
                    const std::vector<int> &rows,
                    const GbdtParams &params, Rng &rng,
                    std::vector<double> &gain)
{
    nodes_.clear();
    build(data, residual, rows, 0, params, rng, gain);
}

float
RegressionTree::predict(std::span<const float> row) const
{
    HERON_CHECK(!nodes_.empty());
    int index = 0;
    while (!nodes_[static_cast<size_t>(index)].is_leaf()) {
        const Node &node = nodes_[static_cast<size_t>(index)];
        index = row[static_cast<size_t>(node.feature)] <=
                        node.threshold
                    ? node.left
                    : node.right;
    }
    return nodes_[static_cast<size_t>(index)].value;
}

GbdtRegressor::GbdtRegressor(GbdtParams params) : params_(params) {}

void
GbdtRegressor::fit(const Dataset &data)
{
    trees_.clear();
    gain_.assign(data.num_features(), 0.0);
    base_ = 0.0;
    if (data.size() == 0)
        return;
    for (float y : data.y)
        base_ += y;
    base_ /= static_cast<double>(data.size());

    Rng rng(params_.seed);
    std::vector<float> prediction(data.size(),
                                  static_cast<float>(base_));
    std::vector<float> residual(data.size());
    std::vector<int> all_rows(data.size());
    std::iota(all_rows.begin(), all_rows.end(), 0);

    for (int t = 0; t < params_.num_trees; ++t) {
        for (size_t i = 0; i < data.size(); ++i)
            residual[i] = data.y[i] - prediction[i];

        std::vector<int> rows = all_rows;
        rng.shuffle(rows);
        size_t take = std::max<size_t>(
            2, static_cast<size_t>(params_.row_subsample *
                                   static_cast<double>(rows.size())));
        rows.resize(std::min(take, rows.size()));

        RegressionTree tree;
        tree.fit(data, residual, rows, params_, rng, gain_);
        for (size_t i = 0; i < data.size(); ++i)
            prediction[i] += static_cast<float>(
                params_.learning_rate * tree.predict(data.x[i]));
        trees_.push_back(std::move(tree));
    }
}

double
GbdtRegressor::predict(std::span<const float> row) const
{
    double value = base_;
    for (const auto &tree : trees_)
        value += params_.learning_rate * tree.predict(row);
    return value;
}

std::vector<double>
GbdtRegressor::feature_importance() const
{
    std::vector<double> importance = gain_;
    double total = 0.0;
    for (double g : importance)
        total += g;
    if (total > 0)
        for (double &g : importance)
            g /= total;
    return importance;
}

double
GbdtRegressor::mae(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    double err = 0.0;
    for (size_t i = 0; i < data.size(); ++i)
        err += std::fabs(predict(data.x[i]) - data.y[i]);
    return err / static_cast<double>(data.size());
}

} // namespace heron::model
