#include "model/cost_model.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::model {

namespace {

/** Feature-memo entries kept before the cache is reset wholesale. */
constexpr size_t kFeatureCacheCap = size_t{1} << 14;

} // namespace

double
throughput_score(bool valid, double latency_ms, int64_t total_ops)
{
    if (!valid || latency_ms <= 0)
        return 0.0;
    double gflops =
        static_cast<double>(total_ops) / (latency_ms * 1e6);
    return std::log2(1.0 + gflops);
}

CostModel::CostModel(const csp::Csp &csp, GbdtParams params)
    : csp_(csp), model_(params)
{
}

std::vector<float>
CostModel::features(const csp::Assignment &a) const
{
    HERON_CHECK_EQ(a.size(), csp_.num_vars());
    std::vector<float> x(a.size());
    for (size_t i = 0; i < a.size(); ++i) {
        double v = static_cast<double>(a[i] < 0 ? -a[i] : a[i]);
        x[i] = static_cast<float>(std::log2(1.0 + v));
    }
    return x;
}

std::span<const float>
CostModel::cached_features(const csp::Assignment &a) const
{
    uint64_t h = csp::assignment_hash(a);
    auto it = feature_cache_.find(h);
    if (it != feature_cache_.end()) {
        HERON_COUNTER_INC("model.feature_cache_hits");
        return it->second;
    }
    if (feature_cache_.size() >= kFeatureCacheCap) {
        // Drop the views before their storage (arena ownership
        // rule), then reclaim every cached vector at once.
        feature_cache_.clear();
        feature_arena_.reset();
    }
    HERON_COUNTER_INC("model.feature_cache_misses");
    float *stored = feature_arena_.alloc_array<float>(a.size());
    size_t i = 0;
    for (float v : features(a))
        stored[i++] = v;
    std::span<const float> view(stored, a.size());
    feature_cache_.emplace(h, view);
    return view;
}

void
CostModel::add_sample(const csp::Assignment &a, bool valid,
                      double latency_ms, int64_t total_ops)
{
    auto view = cached_features(a);
    data_.x.emplace_back(view.begin(), view.end());
    data_.y.push_back(static_cast<float>(
        throughput_score(valid, latency_ms, total_ops)));
}

void
CostModel::add_scored_sample(const csp::Assignment &a, double score)
{
    auto view = cached_features(a);
    data_.x.emplace_back(view.begin(), view.end());
    data_.y.push_back(static_cast<float>(score));
}

void
CostModel::fit()
{
    if (data_.size() < 8)
        return;
    HERON_TRACE_SCOPE("model/fit");
    HERON_COUNTER_INC("model.fit_calls");
    model_.fit(data_);
}

double
CostModel::predict(const csp::Assignment &a) const
{
    if (!model_.trained())
        return 0.0;
    HERON_COUNTER_INC("model.predict_calls");
    return model_.predict(cached_features(a));
}

std::vector<csp::VarId>
CostModel::key_variables(int k) const
{
    std::vector<csp::VarId> keys;
    if (model_.trained()) {
        auto importance = model_.feature_importance();
        std::vector<int> order(importance.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](int a, int b) {
                             return importance[static_cast<size_t>(
                                        a)] >
                                    importance[static_cast<size_t>(
                                        b)];
                         });
        for (int f : order) {
            if (static_cast<int>(keys.size()) >= k)
                break;
            if (importance[static_cast<size_t>(f)] <= 0)
                break;
            keys.push_back(static_cast<csp::VarId>(f));
        }
    }
    // Pad with tunables when untrained or importance is sparse.
    for (csp::VarId v : csp_.tunable_vars()) {
        if (static_cast<int>(keys.size()) >= k)
            break;
        if (std::find(keys.begin(), keys.end(), v) == keys.end())
            keys.push_back(v);
    }
    return keys;
}

} // namespace heron::model
