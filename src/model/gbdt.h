/**
 * @file
 * Gradient-boosted regression trees, built from scratch.
 *
 * Heron's cost model is XGBoost in the paper; this is a compact
 * equivalent: squared-error boosting over depth-limited regression
 * trees with exact greedy splits, shrinkage, row/feature
 * subsampling, and gain-based feature importance (the signal CGA's
 * key-variable extraction consumes).
 */
#ifndef HERON_MODEL_GBDT_H
#define HERON_MODEL_GBDT_H

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.h"

namespace heron::model {

/** Training data: row-major features plus targets. */
struct Dataset {
    std::vector<std::vector<float>> x;
    std::vector<float> y;

    size_t size() const { return x.size(); }
    size_t num_features() const
    {
        return x.empty() ? 0 : x[0].size();
    }
};

/** Boosting hyperparameters. */
struct GbdtParams {
    int num_trees = 32;
    int max_depth = 6;
    double learning_rate = 0.2;
    int min_samples_leaf = 2;
    /** Fraction of features considered per node. */
    double feature_subsample = 0.6;
    /** Fraction of rows bagged per tree. */
    double row_subsample = 0.9;
    uint64_t seed = 1;
};

/** One depth-limited regression tree (array-of-nodes layout). */
class RegressionTree
{
  public:
    /**
     * Fit to (data.x[i], residual[i]) for i in @p rows.
     * Accumulates per-feature split gain into @p gain.
     */
    void fit(const Dataset &data, const std::vector<float> &residual,
             const std::vector<int> &rows, const GbdtParams &params,
             Rng &rng, std::vector<double> &gain);

    /** Predict one row (any contiguous float storage). */
    float predict(std::span<const float> row) const;

    /** Convenience overload for vector rows / braced lists. */
    float predict(const std::vector<float> &row) const
    {
        return predict(std::span<const float>(row));
    }

    /** Node count (for tests). */
    size_t num_nodes() const { return nodes_.size(); }

  private:
    struct Node {
        int feature = -1;
        float threshold = 0.0f;
        float value = 0.0f;
        int left = -1;
        int right = -1;

        bool is_leaf() const { return feature < 0; }
    };
    std::vector<Node> nodes_;

    int build(const Dataset &data, const std::vector<float> &residual,
              std::vector<int> rows, int depth,
              const GbdtParams &params, Rng &rng,
              std::vector<double> &gain);
};

/** The boosted ensemble. */
class GbdtRegressor
{
  public:
    explicit GbdtRegressor(GbdtParams params = {});

    /** Fit from scratch on @p data. */
    void fit(const Dataset &data);

    /** Predict one row; base mean when not yet fitted. */
    double predict(std::span<const float> row) const;

    /** Convenience overload for vector rows / braced lists. */
    double predict(const std::vector<float> &row) const
    {
        return predict(std::span<const float>(row));
    }

    /** True after a successful fit. */
    bool trained() const { return !trees_.empty(); }

    /**
     * Total split gain per feature, normalized to sum to 1
     * (all-zero when untrained or no splits).
     */
    std::vector<double> feature_importance() const;

    /** Mean absolute error on @p data. */
    double mae(const Dataset &data) const;

  private:
    GbdtParams params_;
    std::vector<RegressionTree> trees_;
    double base_ = 0.0;
    std::vector<double> gain_;
};

} // namespace heron::model

#endif // HERON_MODEL_GBDT_H
