#include "schedule/primitive.h"

#include <sstream>

namespace heron::schedule {

const char *
primitive_kind_name(PrimitiveKind kind)
{
    switch (kind) {
      case PrimitiveKind::kSplit: return "split";
      case PrimitiveKind::kFuse: return "fuse";
      case PrimitiveKind::kReorder: return "reorder";
      case PrimitiveKind::kCacheRead: return "cache_read";
      case PrimitiveKind::kCacheWrite: return "cache_write";
      case PrimitiveKind::kComputeAt: return "compute_at";
      case PrimitiveKind::kBind: return "bind";
      case PrimitiveKind::kVectorize: return "vectorize";
      case PrimitiveKind::kUnroll: return "unroll";
      case PrimitiveKind::kTensorize: return "tensorize";
      case PrimitiveKind::kStorageAlign: return "storage_align";
      case PrimitiveKind::kParallel: return "parallel";
    }
    return "?";
}

std::string
Primitive::to_string() const
{
    std::ostringstream out;
    out << primitive_kind_name(kind) << "(" << stage;
    if (!loops.empty()) {
        out << ", [";
        for (size_t i = 0; i < loops.size(); ++i)
            out << (i ? ", " : "") << loops[i];
        out << "]";
    }
    if (!results.empty()) {
        out << " -> [";
        for (size_t i = 0; i < results.size(); ++i)
            out << (i ? ", " : "") << results[i];
        out << "]";
    }
    if (!target.empty())
        out << ", target=" << target;
    if (!scope.empty())
        out << ", scope=" << scope;
    if (!param.empty())
        out << ", param=" << param;
    if (!candidates.empty()) {
        out << ", candidates={";
        for (size_t i = 0; i < candidates.size(); ++i)
            out << (i ? "," : "") << candidates[i];
        out << "}";
    }
    out << ")";
    return out.str();
}

} // namespace heron::schedule
