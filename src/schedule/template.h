/**
 * @file
 * Schedule template structures.
 *
 * The generator (src/rules) turns a ComputeDag into a
 * ScheduleTemplate: a set of StagePlans (original compute stages
 * plus generated cache stages) whose loop structure is multi-level
 * tiled, annotated, and parameterized by tunable tile sizes. The
 * template fixes the *structure*; the CSP fixes the *numbers*.
 */
#ifndef HERON_SCHEDULE_TEMPLATE_H
#define HERON_SCHEDULE_TEMPLATE_H

#include <string>
#include <vector>

#include "ir/dag.h"
#include "schedule/primitive.h"

namespace heron::schedule {

/** What hardware resource a tile level maps onto. */
enum class LoopRole : uint8_t {
    kGrid,       ///< GPU thread block / grid dimension
    kVThread,    ///< virtual thread (striding) level
    kThread,     ///< GPU warp/thread dimension or CPU SIMD lane group
    kSerial,     ///< sequential loop
    kIntrinsic,  ///< consumed by the tensorized hardware intrinsic
    kCore,       ///< CPU core-parallel loop
    kVector,     ///< vectorized innermost loop
    kBuffer,     ///< on-accelerator buffer tile loop (VTA)
};

/** Loop role name ("grid", ...). */
const char *loop_role_name(LoopRole role);

/** Memory scopes across the three DLA archetypes. */
enum class MemScope : uint8_t {
    kGlobal,
    kShared,      ///< GPU shared memory
    kFragment,    ///< TensorCore wmma fragment registers
    kRegister,    ///< accumulation registers
    kL2,          ///< CPU L2 cache tile
    kL1,          ///< CPU L1 cache tile
    kInputBuffer, ///< VTA input SPM
    kWeightBuffer,///< VTA weight SPM
    kAccBuffer,   ///< VTA accumulator SPM
};

/** Memory scope name ("shared", ...). */
const char *mem_scope_name(MemScope scope);

/** Role of a stage within the template. */
enum class StageRole : uint8_t {
    kMain,       ///< the tensorized/compute stage
    kCacheRead,  ///< data-movement stage loading a tensor inward
    kCacheWrite, ///< data-movement stage storing results outward
};

/**
 * The tiling plan of one original axis: how many nested tile levels
 * it is split into and what each level maps onto. Level 0 is the
 * outermost. The per-level lengths are CSP variables named
 * "<stage>.<axis>.<level>"; their product equals the axis extent.
 */
struct TiledAxis {
    std::string name;
    int64_t extent = 1;
    bool reduce = false;
    std::vector<LoopRole> roles;

    /** Number of tile levels. */
    int num_levels() const { return static_cast<int>(roles.size()); }

    /** Loop (and CSP variable) name of one level. */
    std::string level_name(const std::string &stage_name,
                           int level) const;
};

/** Reference to one loop: an (axis, tile level) pair in a stage. */
struct LoopRef {
    int axis;
    int level;
};

/**
 * One stage of the template: either an original compute stage or a
 * generated cache stage, with its tiled loop structure and
 * annotations.
 */
struct StagePlan {
    std::string name;
    StageRole role = StageRole::kMain;
    /** For cache stages: the tensor being staged. */
    std::string tensor;
    MemScope scope = MemScope::kGlobal;
    /** Index of the ir stage this plan derives from (-1 for caches). */
    int ir_stage = -1;

    std::vector<TiledAxis> axes;

    /** Main stage: tensorize annotation. */
    bool tensorized = false;
    /** Intrinsic (m, n, k) candidate sizes (empty = fixed). */
    std::vector<int64_t> intrinsic_m_candidates;
    std::vector<int64_t> intrinsic_n_candidates;
    std::vector<int64_t> intrinsic_k_candidates;
    /** Product constraint m*n*k == this (0 = unconstrained). */
    int64_t intrinsic_volume = 0;
    /** m/n/k role axis indices into @c axes. */
    std::vector<int> m_axes, n_axes, k_axes;

    /** Cache stages: consumer stage and candidate attach depths. */
    std::string compute_at;
    /**
     * Candidate attach positions, as indices into the consumer's
     * flattened loop order (see flatten_loop_order).
     */
    std::vector<int> attach_candidates;

    /** Vectorized innermost data movement (candidates = lengths). */
    bool has_vectorize = false;
    std::vector<int64_t> vector_candidates;

    /** Unroll pragma on the stage (candidates = max unroll steps). */
    bool has_unroll = false;
    std::vector<int64_t> unroll_candidates;

    /** storage_align padding candidates (shared memory stages). */
    bool has_storage_align = false;
    std::vector<int64_t> storage_align_candidates;

    /** Staged through a packed cache-friendly layout (oneDNN-style
     * weight blocking). */
    bool packed_layout = false;

    /** Axis index by name; -1 when absent. */
    int find_axis(const std::string &axis_name) const;

    /**
     * Explicit flattened loop order (outermost first), filled by the
     * generator. When empty, flatten_loop_order() derives a default
     * (by level, spatial before reduce).
     */
    std::vector<LoopRef> loop_order;
};

/**
 * A full schedule template: stage plans plus the flat primitive
 * list the constraint rules scan.
 */
struct ScheduleTemplate {
    /** Stages in producer-to-consumer order (caches interleaved). */
    std::vector<StagePlan> stages;
    std::vector<Primitive> primitives;

    /** Stage plan by name; aborts when absent. */
    const StagePlan &stage(const std::string &name) const;

    /** Mutable stage plan by name; aborts when absent. */
    StagePlan &stage_mut(const std::string &name);

    /** Index of a stage plan by name; -1 when absent. */
    int find_stage(const std::string &name) const;

    /** Multi-line dump of the whole template. */
    std::string to_string() const;
};

/**
 * The flattened loop order of a stage (outermost first), used for
 * compute_at attach positions and footprint math. Returns the
 * generator-provided order when present; otherwise derives one (by
 * level, spatial axes before reduce axes of the same level).
 */
std::vector<LoopRef> flatten_loop_order(const StagePlan &plan);

} // namespace heron::schedule

#endif // HERON_SCHEDULE_TEMPLATE_H
