#include "schedule/concrete.h"

#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"

namespace heron::schedule {

int64_t
ConcreteStage::tile_bytes() const
{
    if (tile_elements == 0)
        return 0;
    // storage_align pads every innermost row by pad elements.
    int64_t row = std::max<int64_t>(1, row_elements);
    int64_t rows = tile_elements / row;
    return checked_mul(
        checked_mul(rows, row + storage_align_pad),
        bytes_per_element);
}

int64_t
ConcreteStage::role_product(LoopRole role) const
{
    int64_t product = 1;
    for (size_t a = 0; a < tile.size(); ++a)
        for (size_t l = 0; l < tile[a].size(); ++l)
            if (roles[a][l] == role)
                product = checked_mul(product, tile[a][l]);
    return product;
}

int64_t
ConcreteStage::axis_extent(int axis) const
{
    return checked_product(tile[static_cast<size_t>(axis)]);
}

int64_t
ConcreteStage::level_length(int axis, int level) const
{
    return tile[static_cast<size_t>(axis)][static_cast<size_t>(level)];
}

const ConcreteStage *
ConcreteProgram::find(const std::string &name) const
{
    for (const auto &s : stages)
        if (s.name == name)
            return &s;
    return nullptr;
}

const ConcreteStage &
ConcreteProgram::main_stage() const
{
    for (const auto &s : stages)
        if (s.role == StageRole::kMain)
            return s;
    HERON_FATAL << "program has no main stage";
    return stages.front();
}

std::vector<const ConcreteStage *>
ConcreteProgram::stages_with_scope(MemScope scope) const
{
    std::vector<const ConcreteStage *> result;
    for (const auto &s : stages)
        if (s.scope == scope)
            result.push_back(&s);
    return result;
}

int64_t
ConcreteProgram::scope_bytes(MemScope scope) const
{
    int64_t total = 0;
    for (const auto *s : stages_with_scope(scope))
        total += s->tile_bytes();
    return total;
}

std::string
ConcreteProgram::to_string() const
{
    std::ostringstream out;
    out << "program for " << workload << "\n";
    for (const auto &s : stages) {
        out << "  " << s.name;
        if (!s.tensor.empty())
            out << " [" << s.tensor << " -> " << mem_scope_name(s.scope)
                << "]";
        if (!s.compute_at.empty())
            out << " @ " << s.compute_at << ":" << s.attach_depth;
        out << "\n";
        for (size_t a = 0; a < s.tile.size(); ++a) {
            out << "    " << s.axis_names[a]
                << (s.axis_reduce[a] ? "(r)" : "") << ":";
            for (size_t l = 0; l < s.tile[a].size(); ++l)
                out << " " << s.tile[a][l] << "("
                    << loop_role_name(s.roles[a][l]) << ")";
            out << "\n";
        }
        if (s.intrinsic_m)
            out << "    tensorize " << s.intrinsic_m << "x"
                << s.intrinsic_n << "x" << s.intrinsic_k << "\n";
        if (s.vector_len > 1)
            out << "    vectorize " << s.vector_len << "\n";
        if (s.unroll > 1)
            out << "    unroll " << s.unroll << "\n";
        if (s.tile_elements)
            out << "    tile_elements " << s.tile_elements
                << " fill_trips " << s.fill_trips << "\n";
    }
    return out.str();
}

namespace {

/** Emit one loop line with role annotation. */
void
emit_loop(std::ostringstream &out, int indent, const std::string &name,
          int64_t length, LoopRole role)
{
    for (int i = 0; i < indent; ++i)
        out << "  ";
    switch (role) {
      case LoopRole::kGrid:
        out << "for " << name << " in grid(" << length << "):";
        break;
      case LoopRole::kVThread:
        out << "for " << name << " in vthread(" << length << "):";
        break;
      case LoopRole::kThread:
        out << "for " << name << " in threads(" << length << "):";
        break;
      case LoopRole::kCore:
        out << "parallel for " << name << " in cores(" << length
            << "):";
        break;
      case LoopRole::kVector:
        out << "vectorized for " << name << " in 0.." << length << ":";
        break;
      case LoopRole::kBuffer:
        out << "for " << name << " in buffer_tiles(" << length << "):";
        break;
      case LoopRole::kIntrinsic:
        out << "# " << name << " consumed by intrinsic (" << length
            << ")";
        break;
      case LoopRole::kSerial:
        out << "for " << name << " in 0.." << length << ":";
        break;
    }
    out << "\n";
}

} // namespace

std::string
print_pseudo_code(const ConcreteProgram &program)
{
    std::ostringstream out;
    out << "// generated pseudo-code for " << program.workload << "\n";
    const ConcreteStage &main = program.main_stage();

    auto order = [&](const ConcreteStage &s) {
        // Reconstruct a loop order: by level, spatial before reduce.
        std::vector<std::pair<int, int>> loops;
        size_t max_levels = 0;
        for (const auto &t : s.tile)
            max_levels = std::max(max_levels, t.size());
        for (size_t level = 0; level < max_levels; ++level)
            for (int pass = 0; pass < 2; ++pass)
                for (size_t a = 0; a < s.tile.size(); ++a)
                    if (s.axis_reduce[a] == (pass == 1) &&
                        level < s.tile[a].size())
                        loops.emplace_back(static_cast<int>(a),
                                           static_cast<int>(level));
        return loops;
    };

    int indent = 0;
    auto loops = order(main);
    for (const auto &[axis, level] : loops) {
        std::ostringstream name;
        name << main.axis_names[static_cast<size_t>(axis)] << "."
             << level;
        emit_loop(out, indent, name.str(),
                  main.level_length(axis, level),
                  main.roles[static_cast<size_t>(axis)]
                            [static_cast<size_t>(level)]);
        ++indent;
        // Emit cache fills attached at this depth.
        int depth = indent - 1;
        for (const auto &s : program.stages) {
            if (s.role == StageRole::kCacheRead &&
                s.attach_depth == depth) {
                for (int i = 0; i < indent; ++i)
                    out << "  ";
                out << s.name << " = load " << s.tensor << " tile ("
                    << s.tile_elements << " elem) into "
                    << mem_scope_name(s.scope);
                if (s.vector_len > 1)
                    out << " vectorize=" << s.vector_len;
                if (s.storage_align_pad > 0)
                    out << " storage_align pad=" << s.storage_align_pad;
                out << "\n";
            }
        }
    }
    for (int i = 0; i < indent; ++i)
        out << "  ";
    if (main.intrinsic_m) {
        out << "mma_sync(" << main.intrinsic_m << "x" << main.intrinsic_n
            << "x" << main.intrinsic_k << ")\n";
    } else {
        out << "scalar compute\n";
    }
    for (const auto &s : program.stages) {
        if (s.role == StageRole::kCacheWrite) {
            out << "store " << s.tensor << " via "
                << mem_scope_name(s.scope) << " ("
                << s.tile_elements << " elem)";
            if (s.vector_len > 1)
                out << " vectorize=" << s.vector_len;
            out << "\n";
        }
    }
    return out.str();
}

} // namespace heron::schedule
