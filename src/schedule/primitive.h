/**
 * @file
 * Schedule primitives.
 *
 * A schedule template is a list of primitives (paper Table 1):
 * split/fuse/reorder loop transforms, cache_read/cache_write stage
 * insertion, compute_at fusion, bind/vectorize/unroll annotations,
 * tensorize, and storage_align. The constraint generation rules
 * (paper Table 8) pattern-match on this list.
 */
#ifndef HERON_SCHEDULE_PRIMITIVE_H
#define HERON_SCHEDULE_PRIMITIVE_H

#include <cstdint>
#include <string>
#include <vector>

namespace heron::schedule {

/** The primitive kinds Heron's generator emits. */
enum class PrimitiveKind : uint8_t {
    kSplit,
    kFuse,
    kReorder,
    kCacheRead,
    kCacheWrite,
    kComputeAt,
    kBind,
    kVectorize,
    kUnroll,
    kTensorize,
    kStorageAlign,
    kParallel,
};

/** Primitive kind name ("split", ...). */
const char *primitive_kind_name(PrimitiveKind kind);

/**
 * One schedule primitive. Field use depends on kind:
 *  - kSplit:        stage, loops={parent}, results={outer, inner},
 *                   param=tile-size parameter name
 *  - kFuse:         stage, loops={l1, l2, ...}, results={fused}
 *  - kReorder:      stage, loops=new order
 *  - kCacheRead:    stage=new cache stage, target=cached tensor,
 *                   scope=memory scope name
 *  - kCacheWrite:   stage=new cache stage, target=tensor, scope
 *  - kComputeAt:    stage, target=consumer stage,
 *                   param=location parameter, candidates=loop depths
 *  - kBind:         stage, loops={loop}, target=thread tag
 *  - kVectorize:    stage, loops={loop}, param=vector length
 *                   parameter, candidates=allowed lengths
 *  - kUnroll:       stage, loops={loop}, param=unroll parameter,
 *                   candidates=allowed factors
 *  - kTensorize:    stage, loops={m, n, k loop names},
 *                   candidates=allowed intrinsic sizes (flattened),
 *                   target=intrinsic name
 *  - kStorageAlign: stage, param=padding parameter,
 *                   candidates=allowed pads
 *  - kParallel:     stage, loops={loop}
 */
struct Primitive {
    PrimitiveKind kind;
    std::string stage;
    std::vector<std::string> loops;
    std::vector<std::string> results;
    std::string param;
    std::string target;
    std::string scope;
    std::vector<int64_t> candidates;

    /** One-line rendering, e.g. "split(C, i -> i.0, i.1, tile.C.i.0)". */
    std::string to_string() const;
};

} // namespace heron::schedule

#endif // HERON_SCHEDULE_PRIMITIVE_H
