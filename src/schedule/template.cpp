#include "schedule/template.h"

#include <sstream>

#include "support/logging.h"

namespace heron::schedule {

const char *
loop_role_name(LoopRole role)
{
    switch (role) {
      case LoopRole::kGrid: return "grid";
      case LoopRole::kVThread: return "vthread";
      case LoopRole::kThread: return "thread";
      case LoopRole::kSerial: return "serial";
      case LoopRole::kIntrinsic: return "intrinsic";
      case LoopRole::kCore: return "core";
      case LoopRole::kVector: return "vector";
      case LoopRole::kBuffer: return "buffer";
    }
    return "?";
}

const char *
mem_scope_name(MemScope scope)
{
    switch (scope) {
      case MemScope::kGlobal: return "global";
      case MemScope::kShared: return "shared";
      case MemScope::kFragment: return "fragment";
      case MemScope::kRegister: return "register";
      case MemScope::kL2: return "l2";
      case MemScope::kL1: return "l1";
      case MemScope::kInputBuffer: return "input_buffer";
      case MemScope::kWeightBuffer: return "weight_buffer";
      case MemScope::kAccBuffer: return "acc_buffer";
    }
    return "?";
}

std::string
TiledAxis::level_name(const std::string &stage_name, int level) const
{
    std::ostringstream out;
    out << stage_name << "." << name << "." << level;
    return out.str();
}

int
StagePlan::find_axis(const std::string &axis_name) const
{
    for (size_t i = 0; i < axes.size(); ++i)
        if (axes[i].name == axis_name)
            return static_cast<int>(i);
    return -1;
}

const StagePlan &
ScheduleTemplate::stage(const std::string &name) const
{
    int i = find_stage(name);
    HERON_CHECK_GE(i, 0) << "unknown template stage: " << name;
    return stages[static_cast<size_t>(i)];
}

StagePlan &
ScheduleTemplate::stage_mut(const std::string &name)
{
    int i = find_stage(name);
    HERON_CHECK_GE(i, 0) << "unknown template stage: " << name;
    return stages[static_cast<size_t>(i)];
}

int
ScheduleTemplate::find_stage(const std::string &name) const
{
    for (size_t i = 0; i < stages.size(); ++i)
        if (stages[i].name == name)
            return static_cast<int>(i);
    return -1;
}

std::string
ScheduleTemplate::to_string() const
{
    std::ostringstream out;
    out << "template with " << stages.size() << " stages, "
        << primitives.size() << " primitives\n";
    for (const auto &plan : stages) {
        out << "stage " << plan.name << " (";
        switch (plan.role) {
          case StageRole::kMain: out << "main"; break;
          case StageRole::kCacheRead: out << "cache_read"; break;
          case StageRole::kCacheWrite: out << "cache_write"; break;
        }
        out << ", scope=" << mem_scope_name(plan.scope);
        if (!plan.tensor.empty())
            out << ", tensor=" << plan.tensor;
        if (!plan.compute_at.empty())
            out << ", compute_at=" << plan.compute_at;
        out << ")\n";
        for (const auto &axis : plan.axes) {
            out << "  " << axis.name << (axis.reduce ? "(r)" : "")
                << "=" << axis.extent << " levels:";
            for (auto role : axis.roles)
                out << " " << loop_role_name(role);
            out << "\n";
        }
    }
    out << "primitives:\n";
    for (const auto &p : primitives)
        out << "  " << p.to_string() << "\n";
    return out.str();
}

std::vector<LoopRef>
flatten_loop_order(const StagePlan &plan)
{
    if (!plan.loop_order.empty())
        return plan.loop_order;

    std::vector<LoopRef> order;
    int max_levels = 0;
    for (const auto &axis : plan.axes)
        max_levels = std::max(max_levels, axis.num_levels());
    for (int level = 0; level < max_levels; ++level) {
        for (int pass = 0; pass < 2; ++pass) {
            bool want_reduce = pass == 1;
            for (int a = 0; a < static_cast<int>(plan.axes.size());
                 ++a) {
                const auto &axis = plan.axes[static_cast<size_t>(a)];
                if (axis.reduce != want_reduce)
                    continue;
                if (level < axis.num_levels())
                    order.push_back(LoopRef{a, level});
            }
        }
    }
    return order;
}

} // namespace heron::schedule
