/**
 * @file
 * Concrete programs: a schedule template with every tunable bound
 * to a value. This is what the DLA measurer consumes and what the
 * pseudo-code printer renders.
 */
#ifndef HERON_SCHEDULE_CONCRETE_H
#define HERON_SCHEDULE_CONCRETE_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/dag.h"
#include "schedule/template.h"

namespace heron::schedule {

/** One stage with all tile sizes and annotations bound. */
struct ConcreteStage {
    std::string name;
    StageRole role = StageRole::kMain;
    MemScope scope = MemScope::kGlobal;
    std::string tensor;
    int ir_stage = -1;

    std::vector<std::string> axis_names;
    std::vector<bool> axis_reduce;
    /** Per axis: per-level lengths; product equals the axis extent. */
    std::vector<std::vector<int64_t>> tile;
    /** Per axis: per-level roles (parallel to @c tile). */
    std::vector<std::vector<LoopRole>> roles;

    /** Cache stages: consumer name and bound attach depth. */
    std::string compute_at;
    int attach_depth = -1;

    int64_t vector_len = 1;
    int64_t unroll = 1;
    int64_t storage_align_pad = 0;

    /** Main stage intrinsic shape (0 when not tensorized). */
    int64_t intrinsic_m = 0, intrinsic_n = 0, intrinsic_k = 0;

    /** Derived at binding time (see rules/space_generator):
     * elements per staged tile, times the tile is (re)filled, and
     * element size. Zero for the main stage. */
    int64_t tile_elements = 0;
    int64_t fill_trips = 0;
    int64_t bytes_per_element = 0;
    /** Innermost tensor-dimension footprint of the staged tile
     * (row length for bank-conflict modeling). */
    int64_t row_elements = 0;
    /** Staged through a packed cache-friendly layout. */
    bool packed_layout = false;

    /** Tile bytes including storage_align padding effects. */
    int64_t tile_bytes() const;

    /** Product of level lengths with the given role, all axes. */
    int64_t role_product(LoopRole role) const;

    /** Product of all level lengths of one axis (== extent). */
    int64_t axis_extent(int axis) const;

    /** Length of one (axis, level) loop. */
    int64_t level_length(int axis, int level) const;
};

/** A fully bound program plus its workload context. */
struct ConcreteProgram {
    /** Workload label for reports. */
    std::string workload;
    ir::DataType dtype = ir::DataType::kFloat16;
    /** Total multiply-accumulate-style op count of the workload. */
    int64_t total_ops = 0;
    /**
     * DRAM bytes for input operands not covered by any cache-read
     * stage: with no on-chip staging every access goes to memory
     * (one read per loop iteration touching the operand).
     */
    int64_t streamed_input_bytes = 0;
    std::vector<ConcreteStage> stages;

    /** Stage by name; nullptr when absent. */
    const ConcreteStage *find(const std::string &name) const;

    /** The main compute stage; aborts if missing. */
    const ConcreteStage &main_stage() const;

    /** All cache stages with the given scope. */
    std::vector<const ConcreteStage *>
    stages_with_scope(MemScope scope) const;

    /** Sum of tile bytes across stages in @p scope. */
    int64_t scope_bytes(MemScope scope) const;

    /** Multi-line structural dump. */
    std::string to_string() const;
};

/**
 * Render a concrete program as readable pseudo-code (nested loops
 * with bind/vectorize/tensorize annotations), the closest analogue
 * of TVM's lowered IR dump.
 */
std::string print_pseudo_code(const ConcreteProgram &program);

} // namespace heron::schedule

#endif // HERON_SCHEDULE_CONCRETE_H
