/**
 * @file
 * Serving-side observability: per-server windowed latency
 * histograms, the per-request observation record the transport fills
 * in as a request moves through its lifecycle, and the runtime
 * identity (start time, pid) reported by stats.
 *
 * RequestMetrics is deliberately NOT part of the process-wide
 * metrics::Registry: window sizing is per-server configuration, and
 * the registry's first-creation-wins semantics would leak one
 * server's window config into the next (a real hazard for tests that
 * run many servers in one process). The process-wide registry keeps
 * the cumulative counters/histograms it always had; RequestMetrics
 * adds the honest last-N-seconds view on top.
 */
#ifndef HERON_SERVE_OBSERVE_H
#define HERON_SERVE_OBSERVE_H

#include <chrono>
#include <string>
#include <vector>

#include "serve/registry.h"
#include "support/metrics.h"

namespace heron::serve {

class AccessLog;

/** Window sizing for RequestMetrics. */
struct RequestMetricsConfig {
    /** Ring slots per window. */
    int slots = 6;
    /** Seconds per slot (default 6 x 10s = last-60s quantiles). */
    double slot_seconds = 10.0;
    /**
     * Bucket upper bounds in microseconds. Empty = exponential
     * 1us .. ~4.2s (powers of two), which covers a sub-microsecond
     * exact probe through a multi-second nearest-tier solve.
     */
    std::vector<double> bounds_us;
};

/**
 * Sliding-window latency histograms per endpoint and per lookup
 * tier. The lookup hot path records into exactly one window (its
 * tier); the endpoint-level lookup window is derived by merging the
 * four tier windows at snapshot time, so instrumentation costs one
 * bucket search + three relaxed atomic adds per lookup.
 */
class RequestMetrics
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit RequestMetrics(RequestMetricsConfig config = {});

    /** Record one lookup answered by @p tier (latency in us). */
    void observe_lookup(double us, LookupTier tier,
                        Clock::time_point now);

    /** Record a control request ("stats", "drain", "save", ...). */
    void observe_endpoint(const std::string &endpoint, double us,
                          Clock::time_point now);

    /** One named window snapshot. */
    struct Named {
        std::string name;
        metrics::WindowSnapshot window;
    };

    /**
     * Snapshot every window: "serve.window.lookup_us" (tiers
     * merged), "serve.window.tier.<tier>_us", and
     * "serve.window.<endpoint>_us" for control endpoints.
     */
    std::vector<Named> snapshot_all(Clock::time_point now) const;

    /** The merged lookup window (what the SLO engine watches). */
    metrics::WindowSnapshot lookup_window(Clock::time_point now) const;

    double window_seconds() const;

    void reset();

  private:
    static constexpr int kTiers = 4;

    RequestMetricsConfig config_;
    /** Indexed by LookupTier. */
    std::vector<std::unique_ptr<metrics::WindowedHistogram>> tiers_;
    /** stats / drain / save / metrics. */
    std::vector<std::unique_ptr<metrics::WindowedHistogram>>
        endpoints_;
    std::vector<std::string> endpoint_names_;
};

/**
 * Everything known about one finished (or shed) request, filled in
 * by the transport as the request moves accept -> parse -> queue ->
 * dispatch -> handle -> serialize -> write. observe_request() turns
 * one of these into windows, cumulative metrics, trace spans, an
 * access-log line, and (over the slow threshold) a span-tree dump.
 */
struct RequestObservation {
    int64_t id = 0;
    /** "lookup", "stats", ... or "invalid" for parse errors. */
    const char *endpoint = "lookup";
    /** Tier name for lookups, "" otherwise. */
    const char *tier = "";
    bool ok = true;
    bool deadline_exceeded = false;
    /** Non-empty when admission control shed the request. */
    const char *shed_reason = "";
    /** Phase latencies in microseconds (0 = not applicable). */
    double parse_us = 0.0;
    double queue_us = 0.0;
    double handle_us = 0.0;
    double serialize_us = 0.0;
    double write_us = 0.0;
    double total_us = 0.0;
    /** The request's deadline_ms (0 = none). */
    double deadline_ms = 0.0;
    /** deadline_ms - total (only when a deadline was set). */
    double deadline_slack_ms = 0.0;
    bool has_deadline = false;
    /** When the request's first byte group was parsed. */
    std::chrono::steady_clock::time_point arrival{};

    /** One-line JSON for the access log. */
    std::string to_json() const;
};

/** Knobs for observe_request. */
struct ObserveConfig {
    /** Requests slower than this get a span-tree warning (0=off). */
    double slow_request_ms = 0.0;
};

/**
 * Record one finished request everywhere it should land: windowed +
 * cumulative metrics, per-phase trace spans (when tracing is on),
 * the access log (@p log nullable), and a slow-request dump when
 * total time exceeds the threshold. @p now is the completion time.
 */
void observe_request(const RequestObservation &obs,
                     RequestMetrics *metrics, AccessLog *log,
                     const ObserveConfig &config,
                     std::chrono::steady_clock::time_point now);

/** Runtime identity reported by the stats endpoint. */
struct ServeRuntime {
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    int pid = 0;

    /** A ServeRuntime stamped "now" for the current process. */
    static ServeRuntime current();

    double uptime_s(std::chrono::steady_clock::time_point now) const
    {
        return std::chrono::duration<double>(now - start).count();
    }
};

} // namespace heron::serve

#endif // HERON_SERVE_OBSERVE_H
