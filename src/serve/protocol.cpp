#include "serve/protocol.h"

#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ir/tensor.h"
#include "serve/store_wal.h"
#include "support/build_info.h"
#include "support/json_util.h"
#include "support/metrics.h"

namespace heron::serve {

namespace {

/** Parse "256,256,256" (json_extract's array body) into ints. */
std::vector<int64_t>
parse_params(const std::string &body)
{
    std::vector<int64_t> params;
    std::istringstream in(body);
    std::string token;
    while (std::getline(in, token, ',')) {
        if (token.empty())
            continue;
        params.push_back(std::atoll(token.c_str()));
    }
    return params;
}

/**
 * Build the workload for (op, params, dtype), enforcing the same
 * operator-specific parameter arity as heron_tune --shape. nullopt
 * with @p error set on a bad op or arity.
 */
std::optional<ops::Workload>
build_workload(const std::string &op,
               const std::vector<int64_t> &p, ir::DataType dtype,
               std::string *error)
{
    auto want = [&](size_t n, const char *fmt) {
        if (p.size() == n)
            return true;
        *error = "op " + op + " needs shape " + fmt;
        return false;
    };
    if (op == "gemm")
        return want(3, "M,N,K")
                   ? std::optional(
                         ops::gemm(p[0], p[1], p[2], dtype))
                   : std::nullopt;
    if (op == "gemv")
        return want(2, "M,K")
                   ? std::optional(ops::gemv(p[0], p[1], dtype))
                   : std::nullopt;
    if (op == "bmm")
        return want(4, "B,M,N,K")
                   ? std::optional(
                         ops::bmm(p[0], p[1], p[2], p[3], dtype))
                   : std::nullopt;
    if (op == "c1d")
        return want(7, "N,CI,L,CO,KW,stride,pad")
                   ? std::optional(ops::c1d(p[0], p[1], p[2], p[3],
                                            p[4], p[5], p[6],
                                            dtype))
                   : std::nullopt;
    if (op == "c2d")
        return want(9, "N,CI,H,W,CO,R,S,stride,pad")
                   ? std::optional(ops::c2d(p[0], p[1], p[2], p[3],
                                            p[4], p[5], p[6], p[7],
                                            p[8], dtype))
                   : std::nullopt;
    if (op == "c3d")
        return want(11, "N,CI,D,H,W,CO,KD,R,S,stride,pad")
                   ? std::optional(ops::c3d(p[0], p[1], p[2], p[3],
                                            p[4], p[5], p[6], p[7],
                                            p[8], p[9], p[10],
                                            dtype))
                   : std::nullopt;
    if (op == "t2d")
        return want(9, "N,CI,H,W,CO,R,S,stride,pad")
                   ? std::optional(ops::t2d(p[0], p[1], p[2], p[3],
                                            p[4], p[5], p[6], p[7],
                                            p[8], dtype))
                   : std::nullopt;
    if (op == "dil")
        return want(10, "N,CI,H,W,CO,R,S,stride,pad,dilation")
                   ? std::optional(ops::dil(p[0], p[1], p[2], p[3],
                                            p[4], p[5], p[6], p[7],
                                            p[8], p[9], dtype))
                   : std::nullopt;
    if (op == "scan")
        return want(2, "N,L")
                   ? std::optional(ops::scan(p[0], p[1]))
                   : std::nullopt;
    *error = "unknown op '" + op + "'";
    return std::nullopt;
}

std::optional<ir::DataType>
parse_dtype(const std::string &name)
{
    for (int d = 0; d <= static_cast<int>(ir::DataType::kInt32);
         ++d) {
        auto candidate = static_cast<ir::DataType>(d);
        if (name == ir::dtype_name(candidate))
            return candidate;
    }
    return std::nullopt;
}

/**
 * Depth-aware array extraction: json_extract stops at the first
 * ']', which truncates an array of objects that themselves hold
 * arrays (a graph request's "layers"). Returns the body between
 * the matching brackets.
 */
std::optional<std::string>
extract_nested_array(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\":";
    size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    pos += needle.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos >= line.size() || line[pos] != '[')
        return std::nullopt;
    int depth = 0;
    for (size_t i = pos; i < line.size(); ++i) {
        if (line[i] == '[')
            ++depth;
        else if (line[i] == ']' && --depth == 0)
            return line.substr(pos + 1, i - pos - 1);
    }
    return std::nullopt;
}

/** Split an array body into its top-level {...} objects. */
std::vector<std::string>
split_objects(const std::string &body)
{
    std::vector<std::string> objects;
    int depth = 0;
    size_t start = 0;
    for (size_t i = 0; i < body.size(); ++i) {
        if (body[i] == '{') {
            if (depth++ == 0)
                start = i;
        } else if (body[i] == '}' && --depth == 0) {
            objects.push_back(body.substr(start, i - start + 1));
        }
    }
    return objects;
}

/** Resolve the dtype for one request/layer object. */
std::optional<ir::DataType>
dtype_for(const std::string &object, const hw::DlaSpec &spec,
          std::string *error)
{
    ir::DataType dtype = spec.kind == hw::DlaKind::kTensorCore
                             ? ir::DataType::kFloat16
                             : ir::DataType::kInt8;
    if (auto name = json_extract(object, "dtype")) {
        auto parsed = parse_dtype(*name);
        if (!parsed) {
            *error = "unknown dtype '" + *name + "'";
            return std::nullopt;
        }
        dtype = *parsed;
    }
    return dtype;
}

/**
 * Parse a graph request's network: either a built-in benchmark
 * ("network" + optional "batch") or an explicit "layers" array of
 * lookup-shaped objects with optional per-layer "count".
 */
std::optional<ops::Network>
parse_network(const std::string &line, const hw::DlaSpec &spec,
              std::string *error)
{
    if (auto name = json_extract(line, "network")) {
        int batch = 16;
        if (auto b = json_extract(line, "batch")) {
            batch = std::atoi(b->c_str());
            if (batch < 1) {
                *error = "batch must be >= 1";
                return std::nullopt;
            }
        }
        if (*name == "resnet50")
            return ops::resnet50(batch);
        if (*name == "inception_v3")
            return ops::inception_v3(batch);
        if (*name == "vgg16")
            return ops::vgg16(batch);
        if (*name == "bert")
            return ops::bert(batch);
        *error = "unknown network '" + *name +
                 "' (resnet50, inception_v3, vgg16, bert)";
        return std::nullopt;
    }

    auto body = extract_nested_array(line, "layers");
    if (!body) {
        *error = "graph needs \"network\" or \"layers\"";
        return std::nullopt;
    }
    ops::Network network;
    if (auto name = json_extract(line, "name"))
        network.name = *name;
    else
        network.name = "graph";
    for (const auto &object : split_objects(*body)) {
        auto op = json_extract(object, "op");
        auto shape = json_extract(object, "shape");
        if (!op || !shape) {
            *error = "graph layer needs \"op\" and \"shape\"";
            return std::nullopt;
        }
        auto dtype = dtype_for(object, spec, error);
        if (!dtype)
            return std::nullopt;
        auto workload = build_workload(*op, parse_params(*shape),
                                       *dtype, error);
        if (!workload)
            return std::nullopt;
        ops::NetworkLayer layer;
        layer.workload = std::move(*workload);
        if (auto count = json_extract(object, "count")) {
            layer.count = std::atoi(count->c_str());
            if (layer.count < 1) {
                *error = "layer count must be >= 1";
                return std::nullopt;
            }
        }
        network.layers.push_back(std::move(layer));
    }
    if (network.layers.empty()) {
        *error = "graph has no layers";
        return std::nullopt;
    }
    return network;
}

/** json_escape plus newline escaping for multi-line payloads. */
std::string
escape_multiline(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

const char *
request_kind_name(Request::Kind kind)
{
    switch (kind) {
      case Request::Kind::kLookup:
        return "lookup";
      case Request::Kind::kGraph:
        return "graph";
      case Request::Kind::kGraphStatus:
        return "graph_status";
      case Request::Kind::kStats:
        return "stats";
      case Request::Kind::kMetrics:
        return "metrics";
      case Request::Kind::kDrain:
        return "drain";
      case Request::Kind::kSave:
        return "save";
      case Request::Kind::kHealth:
        return "health";
      case Request::Kind::kQuit:
        return "quit";
      case Request::Kind::kShutdown:
        return "shutdown";
    }
    return "unknown";
}

std::optional<Request>
parse_request(const std::string &line, const hw::DlaSpec &spec,
              std::string *error)
{
    Request request;
    if (auto id = json_extract(line, "id"))
        request.id = std::atoll(id->c_str());

    if (auto cmd = json_extract(line, "cmd")) {
        if (*cmd == "graph") {
            auto network = parse_network(line, spec, error);
            if (!network)
                return std::nullopt;
            request.kind = Request::Kind::kGraph;
            request.network = std::move(*network);
            if (auto emit = json_extract(line, "emit")) {
                if (*emit != "inline") {
                    *error = "unknown emit mode '" + *emit + "'";
                    return std::nullopt;
                }
                request.graph_inline = true;
            }
            if (auto deadline =
                    json_extract(line, "deadline_ms")) {
                double ms = std::atof(deadline->c_str());
                if (ms < 0.0) {
                    *error = "deadline_ms must be >= 0";
                    return std::nullopt;
                }
                request.deadline_ms = ms;
            }
            return request;
        }
        if (*cmd == "graph_status") {
            auto graph = json_extract(line, "graph");
            if (!graph) {
                *error = "graph_status needs \"graph\"";
                return std::nullopt;
            }
            request.kind = Request::Kind::kGraphStatus;
            request.graph_id = std::atoll(graph->c_str());
            return request;
        }
        if (*cmd == "stats")
            request.kind = Request::Kind::kStats;
        else if (*cmd == "metrics")
            request.kind = Request::Kind::kMetrics;
        else if (*cmd == "drain")
            request.kind = Request::Kind::kDrain;
        else if (*cmd == "save")
            request.kind = Request::Kind::kSave;
        else if (*cmd == "health")
            request.kind = Request::Kind::kHealth;
        else if (*cmd == "quit")
            request.kind = Request::Kind::kQuit;
        else if (*cmd == "shutdown")
            request.kind = Request::Kind::kShutdown;
        else {
            *error = "unknown cmd '" + *cmd + "'";
            return std::nullopt;
        }
        return request;
    }

    auto op = json_extract(line, "op");
    auto shape = json_extract(line, "shape");
    if (!op || !shape) {
        *error = "lookup needs \"op\" and \"shape\"";
        return std::nullopt;
    }
    ir::DataType dtype = spec.kind == hw::DlaKind::kTensorCore
                             ? ir::DataType::kFloat16
                             : ir::DataType::kInt8;
    if (auto name = json_extract(line, "dtype")) {
        auto parsed = parse_dtype(*name);
        if (!parsed) {
            *error = "unknown dtype '" + *name + "'";
            return std::nullopt;
        }
        dtype = *parsed;
    }
    auto workload =
        build_workload(*op, parse_params(*shape), dtype, error);
    if (!workload)
        return std::nullopt;
    if (auto deadline = json_extract(line, "deadline_ms")) {
        double ms = std::atof(deadline->c_str());
        if (ms < 0.0) {
            *error = "deadline_ms must be >= 0";
            return std::nullopt;
        }
        request.deadline_ms = ms;
    }
    request.kind = Request::Kind::kLookup;
    request.workload = std::move(*workload);
    return request;
}

std::string
format_lookup_response(int64_t id, const LookupResult &result,
                       bool degraded)
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"id\":" << id << ",\"tier\":\""
        << lookup_tier_name(result.tier) << "\",\"key\":\""
        << json_escape(result.key.canonical()) << "\"";
    if (result.record) {
        out << ",\"latency_ms\":" << result.record->latency_ms
            << ",\"gflops\":" << result.record->gflops
            << ",\"tuner\":\"" << json_escape(result.record->tuner)
            << "\",\"assignment\":[";
        for (size_t i = 0; i < result.record->assignment.size();
             ++i)
            out << (i ? "," : "") << result.record->assignment[i];
        out << "]";
    }
    if (result.tier == LookupTier::kNearest)
        out << ",\"served_from\":\""
            << json_escape(result.served_from)
            << "\",\"distance\":" << result.distance;
    if (result.tier == LookupTier::kMiss ||
        result.tier == LookupTier::kNearest) {
        out << ",\"enqueued\":" << (result.enqueued ? 1 : 0);
        if (degraded)
            out << ",\"degraded\":1";
    }
    out << "}";
    return out.str();
}

std::string
format_graph_response(int64_t id, const GraphResult &result)
{
    std::ostringstream out;
    out << std::setprecision(6);
    out << "{\"id\":" << id << ",\"graph\":" << result.id
        << ",\"name\":\"" << json_escape(result.name)
        << "\",\"layers\":" << result.layers
        << ",\"instances\":" << result.instances
        << ",\"deduped\":" << result.deduped
        << ",\"tiers\":{\"exact\":" << result.exact
        << ",\"nearest\":" << result.nearest
        << ",\"miss\":" << result.miss << "}"
        << ",\"scheduled\":" << result.scheduled
        << ",\"emitted\":" << result.emitted
        << ",\"coverage\":" << result.coverage
        << ",\"converged\":"
        << (result.converged ? "true" : "false");
    if (result.library_path.empty())
        out << ",\"library\":null";
    else
        out << ",\"library\":\""
            << json_escape(result.library_path) << "\"";
    out << ",\"layer_status\":[";
    for (size_t i = 0; i < result.layer_status.size(); ++i) {
        const GraphLayerStatus &layer = result.layer_status[i];
        out << (i ? "," : "") << "{\"key\":\""
            << json_escape(layer.key) << "\",\"count\":"
            << layer.count << ",\"tier\":\""
            << lookup_tier_name(layer.tier) << "\"";
        if (layer.tier == LookupTier::kNearest)
            out << ",\"distance\":" << layer.distance;
        out << ",\"payoff\":" << layer.payoff
            << ",\"scheduled\":" << (layer.scheduled ? 1 : 0)
            << "}";
    }
    out << "]";
    if (!result.library_header.empty())
        out << ",\"header\":\""
            << escape_multiline(result.library_header) << "\"";
    out << "}";
    return out.str();
}

std::string
format_stats_response(int64_t id, const KernelRegistry &registry,
                      const TuneQueue *queue,
                      const ServeRuntime *runtime,
                      const SloStatus *slo,
                      const DurableStore *store,
                      const GraphServiceStats *graph)
{
    RegistryStats stats = registry.stats();
    std::ostringstream out;
    out << "{\"id\":" << id << ",\"tiers\":{\"exact\":"
        << stats.exact_hits << ",\"nearest\":" << stats.nearest_hits
        << ",\"negative\":" << stats.negative_hits
        << ",\"miss\":" << stats.misses << "}"
        << ",\"fallback_rejected\":" << stats.fallback_rejected
        << ",\"fallback_transferred\":"
        << stats.fallback_transferred
        << ",\"entries\":" << registry.size()
        << ",\"inserts\":" << stats.inserts
        << ",\"hot_swaps\":" << stats.hot_swaps;
    if (queue) {
        TuneQueueStats qs = queue->stats();
        TuneQueueLoad load = queue->load();
        out << ",\"queue\":{\"depth\":" << load.depth
            << ",\"capacity\":" << load.capacity
            << ",\"in_flight\":" << (load.in_flight ? 1 : 0)
            << ",\"accepted\":" << qs.accepted
            << ",\"deduplicated\":" << qs.deduplicated
            << ",\"rejected_full\":" << qs.rejected_full
            << ",\"completed\":" << qs.completed
            << ",\"untunable\":" << qs.failed
            << ",\"failed\":" << qs.failed
            << ",\"persist_failures\":" << qs.persist_failures
            << ",\"persist_retries\":" << qs.persist_retries
            << ",\"rejected_degraded\":" << qs.rejected_degraded
            << "}";
    }
    if (graph) {
        out << ",\"graph\":{\"requests\":" << graph->requests
            << ",\"status_requests\":" << graph->status_requests
            << ",\"layers\":" << graph->layers
            << ",\"deduped\":" << graph->deduped
            << ",\"emitted\":" << graph->emitted
            << ",\"scheduled\":" << graph->scheduled
            << ",\"active\":" << graph->active << "}";
    }
    if (store)
        out << ",\"store\":" << store->stats().to_json();
    if (runtime) {
        out << std::setprecision(6) << ",\"uptime_s\":"
            << runtime->uptime_s(
                   std::chrono::steady_clock::now())
            << ",\"pid\":" << runtime->pid
            << ",\"build\":" << build_info().to_json();
    }
    if (slo)
        out << ",\"slo\":" << slo->to_json();
    out << "}";
    return out.str();
}

std::string
format_metrics_response(int64_t id, const RequestMetrics *windows,
                        const SloStatus *slo)
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    auto snapshot = metrics::Registry::global().snapshot();
    // Reuse the registry's own JSON (already escaped through
    // json_util) and splice windows/slo alongside it.
    std::string body = snapshot.to_json();
    // body = {"counters":{...}} — drop the braces to embed.
    out << "{\"id\":" << id << ","
        << body.substr(1, body.size() - 2);
    if (windows) {
        out << ",\"windows\":{";
        bool first = true;
        auto now = std::chrono::steady_clock::now();
        for (const auto &named : windows->snapshot_all(now)) {
            const auto &w = named.window;
            out << (first ? "" : ",") << "\""
                << json_escape(named.name)
                << "\":{\"count\":" << w.count
                << ",\"sum\":" << w.sum
                << ",\"window_s\":" << w.window_seconds
                << ",\"p50\":" << w.percentile(50)
                << ",\"p95\":" << w.percentile(95)
                << ",\"p99\":" << w.percentile(99) << "}";
            first = false;
        }
        out << "}";
    }
    if (slo)
        out << ",\"slo\":" << slo->to_json();
    out << "}";
    return out.str();
}

std::string
format_health_response(int64_t id, const DurableStore *store)
{
    std::ostringstream out;
    out << "{\"id\":" << id << ",\"status\":\"";
    if (store == nullptr) {
        out << "ok\",\"store\":null}";
        return out.str();
    }
    DurableStoreStats stats = store->stats();
    out << (stats.state == StoreState::kHealthy ? "ok"
                                                : "degraded")
        << "\",\"store\":" << stats.to_json() << "}";
    return out.str();
}

std::string
format_error_response(int64_t id, const std::string &error)
{
    std::ostringstream out;
    out << "{\"id\":" << id << ",\"error\":\"" << json_escape(error)
        << "\"}";
    return out.str();
}

std::string
format_ack_response(int64_t id, const std::string &key, bool value)
{
    std::ostringstream out;
    out << "{\"id\":" << id << ",\"" << json_escape(key)
        << "\":" << (value ? "true" : "false") << "}";
    return out.str();
}

} // namespace heron::serve
