/**
 * @file
 * GraphTuneScheduler: payoff-driven tune ordering for whole-network
 * requests (the Ansor task-scheduler idea applied to the serving
 * path). When a graph request leaves some layers unresolved, FIFO
 * order would tune them in registry-key order; instead each layer
 * is scored by its expected payoff
 *
 *     payoff = count x FLOPs x gap
 *
 * where `count` is how many times the network instantiates the
 * layer, FLOPs is the work per instance, and `gap` estimates how
 * far the currently served answer is from a tuned one (0 for an
 * exact hit, distance/(1+distance) for a nearest-tier fallback, 1
 * for a miss). Layers are fed to the TuneQueue in descending
 * payoff, so the tune budget goes to the layers whose improvement
 * moves end-to-end model latency most. The per-graph budget is the
 * queue capacity split across graphs currently in flight, so one
 * giant model cannot starve every other client's misses.
 */
#ifndef HERON_SERVE_GRAPH_SCHEDULE_H
#define HERON_SERVE_GRAPH_SCHEDULE_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "ops/op_library.h"
#include "serve/registry.h"
#include "serve/tune_queue.h"
#include "serve/workload_key.h"

namespace heron::serve {

/** One distinct graph layer as the payoff model sees it. */
struct GraphLayer {
    ops::Workload workload;
    WorkloadKey key;
    /** Instances of this workload in the network. */
    int64_t count = 1;
    /** Tier the (batched) registry resolution answered with. */
    LookupTier tier = LookupTier::kMiss;
    /** Shape distance to the donor (nearest tier only). */
    double distance = 0.0;
};

/**
 * Estimated quality gap of the served answer: 0 when exact, 1 on a
 * miss, and distance/(1+distance) for a nearest-tier fallback so a
 * farther donor (a worse estimate) ranks closer to a miss.
 */
double tier_gap(LookupTier tier, double distance);

/** count x FLOPs x tier_gap for @p layer. */
double layer_payoff(const GraphLayer &layer);

/** One planned tune, in dispatch order. */
struct ScheduledLayer {
    /** Index into the layer vector handed to plan(). */
    size_t layer = 0;
    double payoff = 0.0;
};

/**
 * Ranks unresolved graph layers by payoff and feeds them to the
 * TuneQueue in that order. plan() is a pure function of its inputs
 * (deterministic, directly testable); dispatch() is the only part
 * that touches the queue. Thread-safe.
 */
class GraphTuneScheduler
{
  public:
    /** @p queue may be nullptr (plan-only; dispatch is a no-op). */
    explicit GraphTuneScheduler(TuneQueue *queue = nullptr);

    /**
     * Rank every layer with a nonzero payoff (anything not exact)
     * in descending payoff and cap the list at @p budget entries.
     * Ties break on instance count, then canonical key, so the
     * order never depends on input permutation.
     */
    static std::vector<ScheduledLayer>
    plan(const std::vector<GraphLayer> &layers, size_t budget);

    /**
     * This graph's tune budget: the queue's waiting-slot capacity
     * split evenly across graphs currently in flight (>= 1 so a
     * lone graph always gets at least one slot).
     */
    size_t budget_for(size_t queue_capacity) const;

    /** budget_for() against the attached queue's capacity. */
    size_t budget() const;

    /**
     * Enqueue @p planned (indices into @p layers) in plan order.
     * Returns how many the queue accepted; duplicates and rejects
     * are counted but not retried — the next graph_status poll
     * re-plans whatever is still unresolved.
     */
    int dispatch(const std::vector<GraphLayer> &layers,
                 const std::vector<ScheduledLayer> &planned);

    /** A graph entered (left) the in-flight set. */
    void graph_opened();
    void graph_closed();

    /** Graphs currently sharing the tune budget. */
    int64_t active_graphs() const;

    /** Total layers handed to the queue (accepted only). */
    int64_t scheduled() const;

  private:
    TuneQueue *queue_;
    std::atomic<int64_t> active_{0};
    std::atomic<int64_t> scheduled_{0};
};

} // namespace heron::serve

#endif // HERON_SERVE_GRAPH_SCHEDULE_H
