/**
 * @file
 * Canonical workload signatures for the serving layer.
 *
 * A WorkloadKey identifies "the kernel you would want" for a
 * request: operator kind + normalized shape parameters + dtype +
 * the target DLA's config hash. Two workloads with the same key are
 * interchangeable — same compute DAG, same constraint space, same
 * hardware — so one tuned record serves both. Notably the
 * user-chosen workload *name* is excluded (GEMM-512x512x512 and
 * my_gemm with the same shape share a key), and kDil with
 * dilation 1 folds into kC2d (they build identical DAGs).
 */
#ifndef HERON_SERVE_WORKLOAD_KEY_H
#define HERON_SERVE_WORKLOAD_KEY_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hw/dla_spec.h"
#include "ops/op_library.h"

namespace heron::serve {

/** Canonical identity of one servable kernel. */
struct WorkloadKey {
    ops::OpKind kind = ops::OpKind::kGemm;
    std::vector<int64_t> params;
    ir::DataType dtype = ir::DataType::kFloat16;
    /** hw::DlaSpec::config_hash() of the target accelerator. */
    uint64_t dla_hash = 0;

    /**
     * Canonical string form, e.g.
     * "GEMM/512x512x512/float16@a1b2c3d4e5f60718". Stable across
     * sessions and field orderings; used for logging, store keys,
     * and LibraryBuilder dedup.
     */
    std::string canonical() const;

    /** Content hash (for the registry's hash maps and sharding). */
    uint64_t hash() const;

    bool operator==(const WorkloadKey &other) const
    {
        return kind == other.kind && dtype == other.dtype &&
               dla_hash == other.dla_hash && params == other.params;
    }

    bool operator!=(const WorkloadKey &other) const
    {
        return !(*this == other);
    }

    /**
     * True when @p other could stand in for this key: same operator
     * family, dtype, and DLA — only the shape differs. The
     * nearest-workload fallback only considers compatible keys.
     */
    bool compatible(const WorkloadKey &other) const
    {
        return kind == other.kind && dtype == other.dtype &&
               dla_hash == other.dla_hash &&
               params.size() == other.params.size();
    }
};

/** std::unordered_map hasher. */
struct WorkloadKeyHash {
    size_t operator()(const WorkloadKey &key) const
    {
        return static_cast<size_t>(key.hash());
    }
};

/** Build the canonical key of @p workload on @p spec. */
WorkloadKey make_key(const ops::Workload &workload,
                     const hw::DlaSpec &spec);

/**
 * Canonical signature string of @p workload on @p spec
 * (make_key(...).canonical()). The dedup identity used by
 * autotune::LibraryBuilder and the serving store.
 */
std::string canonical_signature(const ops::Workload &workload,
                                const hw::DlaSpec &spec);

/**
 * Parse a canonical() string back into a key. This is how the
 * serving store rehydrates: persisted records carry the canonical
 * signature in their workload field. nullopt on anything that is
 * not a well-formed signature (e.g. a record written by heron_tune
 * --log, whose workload field is the display name).
 */
std::optional<WorkloadKey> parse_canonical(const std::string &text);

/**
 * Shape distance between two *compatible* keys: the sum over
 * parameters of |log2(a_i / b_i)|, so a 2x difference in one
 * dimension costs 1 regardless of the dimension's magnitude
 * (the log-space metric Ansor-style transfer uses). Returns +inf
 * for incompatible keys, 0 for equal shapes.
 */
double shape_distance(const WorkloadKey &a, const WorkloadKey &b);

} // namespace heron::serve

#endif // HERON_SERVE_WORKLOAD_KEY_H
