#include "serve/conn.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace heron::serve {

LineScanner::LineScanner(size_t max_line_bytes)
    : max_line_bytes_(std::max<size_t>(1, max_line_bytes))
{
}

void
LineScanner::feed(const char *data, size_t n,
                  const LineHandler &on_line)
{
    size_t pos = 0;
    while (pos < n) {
        const char *nl = static_cast<const char *>(
            std::memchr(data + pos, '\n', n - pos));
        size_t segment_end = nl ? static_cast<size_t>(nl - data) : n;
        size_t segment = segment_end - pos;

        if (!discarding_) {
            if (buffer_.size() + segment > max_line_bytes_) {
                // The line just blew the cap: drop what we have and
                // stream the rest of it to nowhere. Memory use stays
                // at most max_line_bytes_ per connection no matter
                // how long the client withholds the newline.
                buffer_.clear();
                buffer_.shrink_to_fit();
                discarding_ = true;
            } else {
                buffer_.append(data + pos, segment);
            }
        }

        if (!nl)
            return; // incomplete line; wait for more bytes
        if (discarding_) {
            discarding_ = false;
            on_line(std::string(), true);
        } else {
            std::string line;
            line.swap(buffer_);
            on_line(line, false);
        }
        pos = segment_end + 1; // skip the newline
    }
}

Conn::Conn(int fd, uint64_t id, std::string peer_ip,
           size_t max_line_bytes, size_t max_output_bytes)
    : fd_(fd), id_(id), peer_ip_(std::move(peer_ip)),
      scanner_(max_line_bytes),
      max_output_bytes_(std::max<size_t>(1, max_output_bytes))
{
}

bool
Conn::queue_line(const std::string &line)
{
    // +1 for the newline appended on the wire.
    if (output_bytes_ + line.size() + 1 > max_output_bytes_)
        return false;
    output_.push_back(line + "\n");
    output_bytes_ += line.size() + 1;
    return true;
}

bool
Conn::flush()
{
    while (!output_.empty()) {
        const std::string &front = output_.front();
        // MSG_NOSIGNAL: a client that vanished mid-write must cost
        // us an EPIPE errno, not a process-killing SIGPIPE.
        ssize_t wrote = ::send(fd_, front.data() + front_sent_,
                               front.size() - front_sent_,
                               MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // socket full; resume on EPOLLOUT
            if (errno == EINTR)
                continue;
            return false; // EPIPE, ECONNRESET, ...
        }
        front_sent_ += static_cast<size_t>(wrote);
        output_bytes_ -= static_cast<size_t>(wrote);
        if (front_sent_ == front.size()) {
            output_.pop_front();
            front_sent_ = 0;
        }
    }
    return true;
}

} // namespace heron::serve
