/**
 * @file
 * KernelRegistry: the serving-side database of tuned schedules.
 *
 * An in-memory index over autotune::TuningRecords keyed by canonical
 * WorkloadKey. The index is sharded, and each shard publishes an
 * *immutable snapshot* map behind an atomic pointer: readers
 * dereference the current snapshot through a hazard-pointer guard
 * (support/hazard.h) and never take a lock, while put() copies the
 * shard's map, mutates the copy, and swaps it in under a per-shard
 * write mutex (RCU-style copy-on-write). A swapped-out snapshot is
 * retired and freed only once no reader protects it, so lookups are
 * wait-free with respect to inserts and never observe a half-updated
 * shard. The negative cache is sharded alongside the index (one slot
 * per shard) so miss bookkeeping for one key never contends with
 * another shard's. Lookups answer in three tiers:
 *
 *   exact     the query's key is in the index
 *   nearest   a compatible key (same op/dtype/DLA) is close in
 *             shape-distance AND yields an assignment that binds
 *             against the query's freshly generated constraint
 *             space (GeneratedSpace::try_bind) — either the donor's
 *             raw assignment, or a schedule *transfer*: the donor's
 *             tunable genes are pinned as extra IN constraints on
 *             the query's CSP and the solver completes them into a
 *             valid assignment for the query shape. A fallback is
 *             never served on faith; every served assignment passes
 *             try_bind re-validation.
 *   miss      nothing usable; the query is handed to the registered
 *             miss handler (normally a TuneQueue) and a saturating
 *             negative-cache counter is bumped so a workload that
 *             keeps missing stops paying the fallback scan
 *
 * The registry loads from and persists to the CRC-framed JSONL
 * record store (category "serve", workload field = canonical
 * signature) via atomic_write_file, so a serving store survives a
 * crash at any instant.
 */
#ifndef HERON_SERVE_REGISTRY_H
#define HERON_SERVE_REGISTRY_H

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "autotune/record.h"
#include "rules/space_generator.h"
#include "serve/workload_key.h"
#include "support/hazard.h"

namespace heron::serve {

/** Which tier answered a lookup. */
enum class LookupTier : uint8_t {
    kExact = 0,
    kNearest,
    /** Short-circuited by the saturated negative cache. */
    kNegative,
    kMiss,
};

/** Tier name ("exact", "nearest", "negative", "miss"). */
const char *lookup_tier_name(LookupTier tier);

/**
 * Per-lookup options. A deadline caps how long the lookup may
 * spend: the exact tier (a hash probe) always runs, but an expired
 * deadline skips the nearest-tier fallback scan entirely, an
 * in-progress scan aborts between donors, and the transfer solver's
 * budget shrinks to the remaining time. Requests that arrive
 * already expired therefore answer in microseconds instead of
 * burning solver milliseconds.
 */
struct LookupOptions {
    /** Absolute wall-clock budget (unset = unlimited). */
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /**
     * Hand misses (and nearest-tier hits) to the registered miss
     * handler. Graph resolution turns this off so the payoff
     * scheduler — not registry key order — decides the tune order;
     * the single-op path leaves it on.
     */
    bool dispatch_miss = true;
};

/** Outcome of one registry lookup. */
struct LookupResult {
    LookupTier tier = LookupTier::kMiss;
    /** The query's canonical key. */
    WorkloadKey key;
    /** Served record (exact and nearest tiers only). */
    std::optional<autotune::TuningRecord> record;
    /** Donor's canonical signature (nearest tier only). */
    std::string served_from;
    /** Shape distance to the donor (nearest tier only). */
    double distance = 0.0;
    /** True when the miss handler accepted the workload. */
    bool enqueued = false;
    /**
     * True when LookupOptions::deadline cut the lookup short (the
     * fallback scan was skipped or aborted). Such a miss is not
     * counted against the negative cache: the workload might have
     * been servable with more time.
     */
    bool deadline_expired = false;

    bool hit() const
    {
        return tier == LookupTier::kExact ||
               tier == LookupTier::kNearest;
    }
};

/** Registry tuning knobs. */
struct RegistryConfig {
    /** Index shards (clamped to >= 1; power of two not required). */
    int shards = 8;
    /** Serve nearest-workload fallbacks at all. */
    bool enable_fallback = true;
    /**
     * Max shape distance (see shape_distance) a fallback donor may
     * be from the query; beyond it a near-miss is a plain miss.
     */
    double max_fallback_distance = 6.0;
    /** Donors try_bind-checked per lookup, nearest first. */
    int max_fallback_candidates = 4;
    /**
     * When a donor's raw assignment fails try_bind, transplant its
     * tunable genes into the query's CSP and solve for a valid
     * completion (see file header). Disabling limits the nearest
     * tier to raw-bindable donors (effectively same-shape aliases).
     */
    bool enable_transfer = true;
    /**
     * Solver deadline for one transfer attempt; past it the donor
     * is rejected rather than stalling the lookup.
     */
    int64_t transfer_deadline_ms = 25;
    /**
     * Misses of one key before its negative-cache entry saturates
     * and lookups short-circuit (0 disables the negative cache).
     */
    int negative_threshold = 3;
    /** Space generation options for fallback re-validation. */
    rules::Options space_options = rules::Options::heron();
};

/** Monotonic registry counters (also mirrored to support/metrics). */
struct RegistryStats {
    int64_t exact_hits = 0;
    int64_t nearest_hits = 0;
    int64_t negative_hits = 0;
    int64_t misses = 0;
    /** Fallback donors rejected by try_bind re-validation. */
    int64_t fallback_rejected = 0;
    /**
     * Nearest-tier hits served through gene transfer (donor's raw
     * assignment did not bind; a solver-completed one did).
     */
    int64_t fallback_transferred = 0;
    /** Records accepted by put(). */
    int64_t inserts = 0;
    /** Inserts that replaced a slower served record (hot swap). */
    int64_t hot_swaps = 0;
    /** Inserts dropped for not beating the served record. */
    int64_t stale_inserts = 0;
};

/** Accounting for KernelRegistry::load_store. */
struct StoreLoadStats {
    /** Records indexed. */
    int64_t loaded = 0;
    /** Records whose workload field is not a canonical signature. */
    int64_t unparsable = 0;
    /** Records for a different DLA config hash. */
    int64_t foreign_dla = 0;
    /** Invalid (failed-measurement) records skipped. */
    int64_t invalid = 0;
    /** Underlying JSONL accounting (CRC, version skips, ...). */
    autotune::RecordReadStats read;
};

/**
 * Sharded tuned-schedule database for one DLA with lock-free reads
 * (hazard-protected copy-on-write snapshots; see file header). All
 * public methods are thread-safe.
 */
class KernelRegistry
{
  public:
    explicit KernelRegistry(hw::DlaSpec spec,
                            RegistryConfig config = {});

    ~KernelRegistry();

    KernelRegistry(const KernelRegistry &) = delete;
    KernelRegistry &operator=(const KernelRegistry &) = delete;

    /**
     * Called on a miss (and on a nearest-tier hit, so a fallback
     * still converges to an exact record): return true when the
     * workload was accepted for background tuning.
     */
    using MissHandler =
        std::function<bool(const ops::Workload &workload,
                           const WorkloadKey &key)>;

    /** Install the miss handler (pass {} to clear). */
    void set_miss_handler(MissHandler handler);

    /** Three-tier lookup for @p workload (see file header). */
    LookupResult lookup(const ops::Workload &workload,
                        const LookupOptions &options = {});

    /**
     * Resolve a batch of workloads in one pass. Exact hits are
     * answered by grouping the queries per shard and probing each
     * touched shard's hazard-protected snapshot *once* — one guard
     * acquisition per shard instead of one per query — then only
     * the leftovers pay the per-query slow path (negative cache,
     * fallback scan, miss dispatch), identical in behavior to
     * lookup(). Results are returned in input order. Per-tier
     * counters are maintained per query; the whole pass observes
     * one `serve.lookup.batch_us` histogram sample (per-query
     * latency histograms are not inflated with 1/n shares).
     */
    std::vector<LookupResult>
    lookup_batch(const std::vector<ops::Workload> &workloads,
                 const LookupOptions &options = {});

    /**
     * Pure exact-tier probe: the served record for @p key, or
     * nullopt. No counters, no fallback, no miss dispatch, no
     * negative-cache traffic — made for status polling (e.g.
     * graph_status convergence checks) that must not perturb the
     * serving statistics it reports.
     */
    std::optional<autotune::TuningRecord>
    peek(const WorkloadKey &key) const;

    /**
     * Insert @p record as the tuned result for @p workload,
     * hot-swapping the served record when it is faster (higher
     * GFLOP/s) than the incumbent. Clears the key's negative-cache
     * entry. Returns true when the record is now the served one.
     * Invalid or assignment-less records are rejected.
     */
    bool put(const ops::Workload &workload,
             autotune::TuningRecord record);

    /**
     * Saturate @p key's negative-cache entry immediately (used when
     * a background tune concludes the workload cannot be tuned, so
     * further lookups stop re-enqueueing it).
     */
    void mark_untunable(const WorkloadKey &key);

    /** Indexed records across all shards. */
    size_t size() const;

    /** Snapshot of the registry counters. */
    RegistryStats stats() const;

    /**
     * Merge a CRC-framed JSONL store into the index (keeping the
     * faster record on key collisions). Unparsable, foreign-DLA,
     * and invalid records are skipped and counted. Returns the
     * number of records indexed.
     */
    int64_t load_store(const std::string &text,
                       StoreLoadStats *stats = nullptr);

    /**
     * Merge already-parsed records (same screening and collision
     * policy as load_store). Feeds the index from sources that do
     * their own framing, e.g. DurableStore::records() after a WAL
     * replay.
     */
    int64_t load_records(std::vector<autotune::TuningRecord> records,
                         StoreLoadStats *stats = nullptr);

    /** load_store from a file; missing file = empty store (0). */
    int64_t load_store_file(const std::string &path,
                            StoreLoadStats *stats = nullptr);

    /**
     * Persist every served record, sorted by canonical signature
     * for run-to-run determinism, via atomic_write_file. False on
     * I/O failure.
     */
    bool save_store_file(const std::string &path) const;

    /** The accelerator this registry serves. */
    const hw::DlaSpec &spec() const { return spec_; }

  private:
    struct Entry {
        WorkloadKey key;
        autotune::TuningRecord record;
    };

    using Map =
        std::unordered_map<WorkloadKey, Entry, WorkloadKeyHash>;

    /**
     * One index shard. Readers follow `current` through a hazard
     * guard and never lock; writers hold `write_mu`, copy the map
     * pointed to by `current`, mutate the copy, exchange the
     * pointer, and move the old snapshot to `retired` until no
     * hazard slot protects it (the reclamation rule). The negative
     * cache rides in the same shard under its own small mutex so
     * miss bookkeeping is sharded too.
     */
    struct Shard {
        /** Serializes writers; readers never touch it. */
        std::mutex write_mu;
        /** Published immutable snapshot (never nullptr). */
        std::atomic<const Map *> current{nullptr};
        /** Swapped-out snapshots awaiting reclamation (write_mu). */
        std::vector<const Map *> retired;

        /** Saturating per-key miss counters (negative cache). */
        mutable std::mutex neg_mu;
        std::unordered_map<WorkloadKey, int, WorkloadKeyHash>
            negative;
    };

    hw::DlaSpec spec_;
    uint64_t spec_hash_ = 0;
    RegistryConfig config_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /**
     * Generated-space cache for fallback re-validation: generating
     * a space is milliseconds while a lookup is microseconds, so
     * each query shape pays generation once. Striped internally.
     */
    mutable rules::SpaceCache spaces_;

    mutable std::mutex miss_handler_mu_;
    MissHandler miss_handler_;

    /** Counters (relaxed atomics; snapshot via stats()). */
    mutable std::atomic<int64_t> exact_hits_{0};
    mutable std::atomic<int64_t> nearest_hits_{0};
    mutable std::atomic<int64_t> negative_hits_{0};
    mutable std::atomic<int64_t> misses_{0};
    mutable std::atomic<int64_t> fallback_rejected_{0};
    mutable std::atomic<int64_t> fallback_transferred_{0};
    std::atomic<int64_t> inserts_{0};
    std::atomic<int64_t> hot_swaps_{0};
    std::atomic<int64_t> stale_inserts_{0};

    Shard &shard_for(const WorkloadKey &key);
    const Shard &shard_for(const WorkloadKey &key) const;

    /**
     * Publish @p next as @p shard's snapshot (write_mu must be
     * held), retire the old one, and free any retired snapshot no
     * reader still protects.
     */
    static void publish(Shard &shard, const Map *next);

    /** True when the key's negative entry is saturated. */
    bool negative_saturated(const WorkloadKey &key) const;
    /** Bump the key's miss counter (saturating). */
    void note_miss(const WorkloadKey &key);
    /** Forget the key's miss counter (a record arrived). */
    void clear_negative(const WorkloadKey &key);

    /** Generate (or fetch cached) space for a query workload. */
    std::shared_ptr<const rules::GeneratedSpace>
    space_for(const ops::Workload &workload, const WorkloadKey &key);

    /**
     * Nearest-tier attempt: returns a result only when a compatible
     * donor within distance yields a try_bind-valid assignment for
     * the query's space (raw or transferred). Sets
     * @p deadline_expired and stops early when @p options's
     * deadline runs out between donors.
     */
    std::optional<LookupResult>
    try_fallback(const ops::Workload &workload,
                 const WorkloadKey &key,
                 const LookupOptions &options,
                 bool *deadline_expired);

    /**
     * Complete the donor's tunable genes into a valid assignment
     * for the query's space. Genes are matched by variable *name*
     * (templates are shape-dependent, so ids do not line up across
     * shapes), then over-constraining pins are dropped — never
     * below half of the transferable genes, past which the result
     * would be a fresh random schedule, not a transfer.
     * Deterministic per (query, donor) pair. @p budget_ms > 0 caps
     * the solver deadline below the configured transfer deadline
     * (deadline propagation from the serving front-end).
     */
    std::optional<csp::Assignment>
    transfer_assignment(const rules::GeneratedSpace &space,
                        const rules::GeneratedSpace &donor_space,
                        const WorkloadKey &key,
                        const WorkloadKey &donor_key,
                        const csp::Assignment &donor,
                        double budget_ms) const;

    /** Invoke the miss handler (false when none installed). */
    bool dispatch_miss(const ops::Workload &workload,
                       const WorkloadKey &key);

    /**
     * Everything after a failed exact probe: negative cache, then
     * fallback, then miss accounting + handler dispatch. Shared by
     * lookup() and lookup_batch() so the two paths cannot drift.
     */
    LookupResult lookup_slow(const ops::Workload &workload,
                             WorkloadKey key,
                             const LookupOptions &options);
};

} // namespace heron::serve

#endif // HERON_SERVE_REGISTRY_H
