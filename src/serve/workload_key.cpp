#include "serve/workload_key.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <sstream>

#include "ir/tensor.h"
#include "support/math_util.h"

namespace heron::serve {

namespace {

/**
 * Normalize (kind, params) to the canonical representative of the
 * equivalence class: kDil and kC2d share one parameter layout and
 * build identical DAGs, so every dilated convolution is keyed as
 * kC2d and the dilation rides in the parameter vector.
 */
ops::OpKind
normalize_kind(ops::OpKind kind)
{
    return kind == ops::OpKind::kDil ? ops::OpKind::kC2d : kind;
}

} // namespace

std::string
WorkloadKey::canonical() const
{
    std::ostringstream out;
    out << ops::op_kind_name(kind) << "/";
    for (size_t i = 0; i < params.size(); ++i)
        out << (i ? "x" : "") << params[i];
    out << "/" << ir::dtype_name(dtype) << "@" << std::hex
        << std::setw(16) << std::setfill('0') << dla_hash;
    return out.str();
}

uint64_t
WorkloadKey::hash() const
{
    uint64_t h = hash_u64(static_cast<uint64_t>(kind));
    h = hash_combine(h, static_cast<uint64_t>(dtype));
    h = hash_combine(h, dla_hash);
    for (int64_t p : params)
        h = hash_combine(h, static_cast<uint64_t>(p));
    return h;
}

WorkloadKey
make_key(const ops::Workload &workload, const hw::DlaSpec &spec)
{
    WorkloadKey key;
    key.kind = normalize_kind(workload.kind);
    key.params = workload.params;
    key.dtype = workload.dtype;
    key.dla_hash = spec.config_hash();
    return key;
}

std::string
canonical_signature(const ops::Workload &workload,
                    const hw::DlaSpec &spec)
{
    return make_key(workload, spec).canonical();
}

std::optional<WorkloadKey>
parse_canonical(const std::string &text)
{
    // KIND/p0xp1x.../dtype@0123456789abcdef
    size_t slash1 = text.find('/');
    size_t slash2 = text.find('/', slash1 + 1);
    size_t at = text.find('@', slash2 + 1);
    if (slash1 == std::string::npos ||
        slash2 == std::string::npos || at == std::string::npos)
        return std::nullopt;

    WorkloadKey key;
    std::string kind = text.substr(0, slash1);
    bool found_kind = false;
    for (int k = 0; k <= static_cast<int>(ops::OpKind::kScan);
         ++k) {
        auto candidate = static_cast<ops::OpKind>(k);
        if (kind == ops::op_kind_name(candidate)) {
            key.kind = candidate;
            found_kind = true;
            break;
        }
    }
    if (!found_kind)
        return std::nullopt;

    std::istringstream shapes(
        text.substr(slash1 + 1, slash2 - slash1 - 1));
    std::string token;
    while (std::getline(shapes, token, 'x')) {
        if (token.empty() ||
            token.find_first_not_of("0123456789-") !=
                std::string::npos)
            return std::nullopt;
        key.params.push_back(std::atoll(token.c_str()));
    }
    if (key.params.empty())
        return std::nullopt;

    std::string dtype = text.substr(slash2 + 1, at - slash2 - 1);
    bool found_dtype = false;
    for (int d = 0; d <= static_cast<int>(ir::DataType::kInt32);
         ++d) {
        auto candidate = static_cast<ir::DataType>(d);
        if (dtype == ir::dtype_name(candidate)) {
            key.dtype = candidate;
            found_dtype = true;
            break;
        }
    }
    if (!found_dtype)
        return std::nullopt;

    std::string hex = text.substr(at + 1);
    if (hex.size() != 16)
        return std::nullopt;
    uint64_t hash = 0;
    for (char c : hex) {
        uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<uint64_t>(c - 'a') + 10;
        else
            return std::nullopt;
        hash = hash << 4 | digit;
    }
    key.dla_hash = hash;
    return key;
}

double
shape_distance(const WorkloadKey &a, const WorkloadKey &b)
{
    if (!a.compatible(b))
        return std::numeric_limits<double>::infinity();
    double distance = 0.0;
    for (size_t i = 0; i < a.params.size(); ++i) {
        double pa = static_cast<double>(a.params[i]);
        double pb = static_cast<double>(b.params[i]);
        if (pa <= 0 || pb <= 0) {
            if (pa != pb)
                return std::numeric_limits<double>::infinity();
            continue;
        }
        distance += std::fabs(std::log2(pa / pb));
    }
    return distance;
}

} // namespace heron::serve
