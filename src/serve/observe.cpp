#include "serve/observe.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>
#include <unistd.h>

#include "serve/access_log.h"
#include "support/json_util.h"
#include "support/logging.h"
#include "support/trace.h"

namespace heron::serve {

RequestMetrics::RequestMetrics(RequestMetricsConfig config)
    : config_(std::move(config))
{
    if (config_.bounds_us.empty())
        // 1us .. 2^22us (~4.2s): exact probes land in the first
        // buckets, nearest-tier solves in the milliseconds, and a
        // wedged multi-second request still resolves a quantile.
        for (double b = 1.0; b <= 4194304.0; b *= 2.0)
            config_.bounds_us.push_back(b);
    for (int i = 0; i < kTiers; ++i)
        tiers_.push_back(
            std::make_unique<metrics::WindowedHistogram>(
                config_.bounds_us, config_.slots,
                config_.slot_seconds));
    endpoint_names_ = {"stats", "drain", "save", "metrics"};
    for (size_t i = 0; i < endpoint_names_.size(); ++i)
        endpoints_.push_back(
            std::make_unique<metrics::WindowedHistogram>(
                config_.bounds_us, config_.slots,
                config_.slot_seconds));
}

void
RequestMetrics::observe_lookup(double us, LookupTier tier,
                               Clock::time_point now)
{
    auto t = static_cast<size_t>(tier);
    if (t >= tiers_.size())
        t = kTiers - 1;
    tiers_[t]->observe(us, now);
}

void
RequestMetrics::observe_endpoint(const std::string &endpoint,
                                 double us, Clock::time_point now)
{
    for (size_t i = 0; i < endpoint_names_.size(); ++i) {
        if (endpoint_names_[i] == endpoint) {
            endpoints_[i]->observe(us, now);
            return;
        }
    }
}

namespace {

void
merge_into(metrics::WindowSnapshot &dst,
           const metrics::WindowSnapshot &src)
{
    if (dst.bounds.empty()) {
        dst = src;
        return;
    }
    for (size_t b = 0;
         b < dst.counts.size() && b < src.counts.size(); ++b)
        dst.counts[b] += src.counts[b];
    dst.count += src.count;
    dst.sum += src.sum;
    dst.live_slots = std::max(dst.live_slots, src.live_slots);
}

} // namespace

metrics::WindowSnapshot
RequestMetrics::lookup_window(Clock::time_point now) const
{
    metrics::WindowSnapshot merged;
    for (const auto &tier : tiers_)
        merge_into(merged, tier->snapshot(now));
    return merged;
}

std::vector<RequestMetrics::Named>
RequestMetrics::snapshot_all(Clock::time_point now) const
{
    std::vector<Named> out;
    out.push_back({"serve.window.lookup_us", lookup_window(now)});
    for (int t = 0; t < kTiers; ++t)
        out.push_back(
            {std::string("serve.window.tier.") +
                 lookup_tier_name(static_cast<LookupTier>(t)) +
                 "_us",
             tiers_[static_cast<size_t>(t)]->snapshot(now)});
    for (size_t i = 0; i < endpoints_.size(); ++i)
        out.push_back({"serve.window." + endpoint_names_[i] + "_us",
                       endpoints_[i]->snapshot(now)});
    return out;
}

double
RequestMetrics::window_seconds() const
{
    return tiers_.empty() ? 0.0 : tiers_[0]->window_seconds();
}

void
RequestMetrics::reset()
{
    for (auto &tier : tiers_)
        tier->reset();
    for (auto &endpoint : endpoints_)
        endpoint->reset();
}

std::string
RequestObservation::to_json() const
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"id\":" << id << ",\"endpoint\":\""
        << json_escape(endpoint) << "\"";
    if (tier && *tier)
        out << ",\"tier\":\"" << json_escape(tier) << "\"";
    out << ",\"ok\":" << (ok ? "true" : "false");
    if (deadline_exceeded)
        out << ",\"deadline_exceeded\":true";
    if (shed_reason && *shed_reason)
        out << ",\"shed_reason\":\"" << json_escape(shed_reason)
            << "\"";
    out << ",\"total_us\":" << total_us;
    // Phases that did not happen (shed requests, stdio mode) stay
    // out of the line instead of reporting a misleading 0.
    if (parse_us > 0.0)
        out << ",\"parse_us\":" << parse_us;
    if (queue_us > 0.0)
        out << ",\"queue_us\":" << queue_us;
    if (handle_us > 0.0)
        out << ",\"handle_us\":" << handle_us;
    if (serialize_us > 0.0)
        out << ",\"serialize_us\":" << serialize_us;
    if (write_us > 0.0)
        out << ",\"write_us\":" << write_us;
    if (has_deadline)
        out << ",\"deadline_slack_ms\":" << deadline_slack_ms;
    out << "}";
    return out.str();
}

namespace {

/** Emit the request's phase spans under serve/phase/... labels. */
void
record_phase_spans(const RequestObservation &obs)
{
    auto &tracer = trace::Tracer::global();
    if (!tracer.enabled())
        return;
    using Clock = std::chrono::steady_clock;
    auto at = [&](double offset_us) {
        return obs.arrival +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::micro>(
                       offset_us));
    };
    double t = 0.0;
    auto span = [&](const char *label, double dur_us) {
        if (dur_us <= 0.0)
            return;
        tracer.record_span(label, at(t), at(t + dur_us));
        t += dur_us;
    };
    span("serve/phase/parse", obs.parse_us);
    span("serve/phase/queue", obs.queue_us);
    span("serve/phase/handle", obs.handle_us);
    span("serve/phase/serialize", obs.serialize_us);
    span("serve/phase/write", obs.write_us);
    tracer.record_span("serve/phase/total", obs.arrival,
                       at(obs.total_us));
}

} // namespace

void
observe_request(const RequestObservation &obs,
                RequestMetrics *metrics, AccessLog *log,
                const ObserveConfig &config,
                std::chrono::steady_clock::time_point now)
{
    bool slow = config.slow_request_ms > 0.0 &&
                obs.total_us > config.slow_request_ms * 1e3;

    // Cumulative per-phase histograms (process-lifetime, compiled
    // out by HERON_DISABLE_TRACING like all HERON_* macros).
    if (obs.parse_us > 0.0)
        HERON_HISTOGRAM_OBSERVE("serve.phase.parse_us",
                                obs.parse_us);
    if (obs.queue_us > 0.0)
        HERON_HISTOGRAM_OBSERVE("serve.phase.queue_us",
                                obs.queue_us);
    if (obs.handle_us > 0.0)
        HERON_HISTOGRAM_OBSERVE("serve.phase.handle_us",
                                obs.handle_us);
    if (obs.serialize_us > 0.0)
        HERON_HISTOGRAM_OBSERVE("serve.phase.serialize_us",
                                obs.serialize_us);
    if (obs.write_us > 0.0)
        HERON_HISTOGRAM_OBSERVE("serve.phase.write_us",
                                obs.write_us);
    record_phase_spans(obs);

    if (metrics && !(obs.shed_reason && *obs.shed_reason)) {
        if (std::string_view(obs.endpoint) == "lookup") {
            LookupTier tier = LookupTier::kMiss;
            std::string_view t(obs.tier);
            if (t == "exact")
                tier = LookupTier::kExact;
            else if (t == "nearest")
                tier = LookupTier::kNearest;
            else if (t == "negative")
                tier = LookupTier::kNegative;
            metrics->observe_lookup(obs.total_us, tier, now);
        } else {
            metrics->observe_endpoint(obs.endpoint, obs.total_us,
                                      now);
        }
    }

    if (slow) {
        HERON_COUNTER_INC("serve.request.slow");
        HERON_WARN << "serve: slow request id=" << obs.id
                   << " endpoint=" << obs.endpoint
                   << (obs.tier && *obs.tier ? " tier=" : "")
                   << obs.tier << " total="
                   << obs.total_us / 1e3 << "ms (parse "
                   << obs.parse_us << "us, queue " << obs.queue_us
                   << "us, handle " << obs.handle_us
                   << "us, serialize " << obs.serialize_us
                   << "us, write " << obs.write_us << "us)";
    }

    if (log)
        // Errors, sheds, and slow requests always log; healthy
        // requests go through the sampler.
        log->append(obs.to_json(),
                    /*always=*/!obs.ok || slow ||
                        (obs.shed_reason && *obs.shed_reason));
}

ServeRuntime
ServeRuntime::current()
{
    ServeRuntime runtime;
    runtime.start = std::chrono::steady_clock::now();
    runtime.pid = static_cast<int>(::getpid());
    return runtime;
}

} // namespace heron::serve
