/**
 * @file
 * Write-ahead-logged durable store for the serving layer.
 *
 * The legacy persist path rewrote the entire store file on every
 * tune completion (O(N) serialize + fsync per record). DurableStore
 * replaces it with a log-structured layout inside one directory:
 *
 *   MANIFEST               one-line JSON: current snapshot file and
 *                          the first live segment id (atomic swap)
 *   snapshot-NNNNNN.jsonl  sorted CRC-framed records (compaction
 *                          output, written via atomic_write_file)
 *   seg-NNNNNN.wal         append-only CRC-framed record segments
 *   *.quarantined          corrupted files renamed aside, kept for
 *                          post-mortem, never reloaded
 *
 * append() is O(1): one CRC-framed line written + fsync'd to the
 * active segment. Segments rotate at a size threshold; a background
 * compaction pass folds everything into a fresh snapshot and swaps
 * the manifest atomically, after which obsolete segments are
 * deleted. open() replays snapshot-then-segments with torn-tail
 * truncation: an acknowledged record is never lost, a half-written
 * one is never visible, and a corrupted file is quarantined (its
 * CRC-valid records are still salvaged) rather than fatal.
 *
 * IO failure flips the store into a degraded circuit-breaker state:
 * failed records are stashed in memory, probes retry the log on a
 * backoff, and a successful probe rotates to a fresh segment,
 * flushes the stash, and restores healthy state. The serving layer
 * keeps answering lookups throughout and pauses tune intake.
 */
#ifndef HERON_SERVE_STORE_WAL_H
#define HERON_SERVE_STORE_WAL_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autotune/record.h"

namespace heron::serve {

struct DurableStoreConfig {
    /** Store directory (created on open when missing). */
    std::string dir;
    /** Rotate the active segment once it exceeds this size. */
    size_t segment_max_bytes = 1u << 20;
    /**
     * Trigger background compaction when this many sealed (rotated)
     * segments are live. 0 disables automatic compaction;
     * compact_now() still works.
     */
    int compact_min_segments = 4;
    /** Backoff between degraded-mode recovery probes. */
    double retry_backoff_ms = 1000.0;
    /** fsync each appended record (disable only in benchmarks). */
    bool fsync_data = true;
};

enum class StoreState : uint8_t {
    kHealthy = 0,
    /** Persist path failing; appends are stashed, probes retry. */
    kDegraded,
};

const char *store_state_name(StoreState state);

struct DurableStoreStats {
    int64_t appends = 0;          ///< records durably appended
    int64_t append_failures = 0;  ///< append() calls that stashed
    int64_t rotations = 0;        ///< segments sealed
    int64_t compactions = 0;      ///< successful snapshot swaps
    int64_t compaction_failures = 0;
    int64_t quarantined = 0;      ///< corrupted files renamed aside
    int64_t torn_tails = 0;       ///< truncated tails recovered
    int64_t replayed = 0;         ///< records loaded at open()
    int64_t salvaged = 0;         ///< records kept from quarantined files
    int64_t degraded_entries = 0; ///< healthy->degraded transitions
    int64_t recoveries = 0;       ///< degraded->healthy transitions
    int64_t probes = 0;           ///< recovery probes attempted
    int64_t unflushed = 0;        ///< records currently stashed
    int64_t live_segments = 0;    ///< sealed segments awaiting compaction
    int64_t records = 0;          ///< distinct workloads held
    double last_replay_ms = 0.0;  ///< open() replay wall time
    StoreState state = StoreState::kHealthy;

    /** One-line JSON object (embedded in stats/health responses). */
    std::string to_json() const;
};

class DurableStore {
public:
    explicit DurableStore(DurableStoreConfig config);
    ~DurableStore();

    DurableStore(const DurableStore &) = delete;
    DurableStore &operator=(const DurableStore &) = delete;

    /**
     * Create/replay the store directory and start the background
     * compactor. Corrupted files are quarantined, never fatal; only
     * an unusable directory (cannot create or write) fails open.
     */
    bool open(std::string *error = nullptr);

    /** Stop the compactor and close the active segment. */
    void close();

    /**
     * Replayed records (best per workload), for feeding the
     * registry after open().
     */
    std::vector<autotune::TuningRecord> records() const;

    /**
     * Durably append one record (O(1): one framed line + fsync).
     * Returns false when the record could not be persisted now — it
     * is stashed and retried by recovery probes, and the store is
     * degraded until a probe succeeds.
     */
    bool append(const autotune::TuningRecord &record);

    /**
     * Periodic maintenance: when degraded, attempt a recovery probe
     * if the backoff has elapsed. Called from the server tick loop
     * and from tune-queue admission.
     */
    void tick(std::chrono::steady_clock::time_point now);

    /**
     * Synchronously compact: write a sorted snapshot, swap the
     * manifest, delete obsolete segments. Used by the save command
     * and graceful drain.
     */
    bool compact_now();

    StoreState state() const;
    bool healthy() const { return state() == StoreState::kHealthy; }
    DurableStoreStats stats() const;
    const DurableStoreConfig &config() const { return config_; }

private:
    struct Segment {
        int64_t id = 0;
        std::string path;
    };

    std::string file_path(const char *prefix, int64_t id,
                          const char *suffix) const;
    std::string manifest_path() const;
    bool write_manifest_locked();
    bool open_active_locked(std::string *error);
    void ingest_locked(autotune::TuningRecord record);
    bool raw_append_locked(const autotune::TuningRecord &record);
    void enter_degraded_locked(
        const autotune::TuningRecord &record);
    /** @p force skips the backoff (post-compaction recovery). */
    void maybe_probe_locked(
        std::chrono::steady_clock::time_point now,
        bool force = false);
    bool quarantine(const std::string &path);
    bool do_compact();
    void compactor_loop();

    DurableStoreConfig config_;

    mutable std::mutex mu_;
    /** Serializes whole compaction passes (cv kick vs compact_now). */
    std::mutex compact_run_mu_;
    std::condition_variable compact_cv_;
    std::thread compactor_;
    bool compact_requested_ = false;
    bool closing_ = false;
    bool opened_ = false;

    /** Best record per canonical workload signature. */
    std::map<std::string, autotune::TuningRecord> records_;
    /** Records acknowledged to callers but not yet durable. */
    std::map<std::string, autotune::TuningRecord> unflushed_;

    std::string snapshot_file_; ///< manifest's snapshot ("" = none)
    int64_t segments_from_ = 0; ///< first live segment id
    std::vector<Segment> sealed_;
    int64_t active_id_ = 0;
    int active_fd_ = -1;
    size_t active_bytes_ = 0;
    int64_t next_file_id_ = 1;
    int64_t next_seq_ = 1;

    StoreState state_ = StoreState::kHealthy;
    std::chrono::steady_clock::time_point last_probe_{};

    DurableStoreStats stats_;
};

} // namespace heron::serve

#endif // HERON_SERVE_STORE_WAL_H
