#include "serve/store_wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/fs_util.h"
#include "support/json_util.h"
#include "support/logging.h"
#include "support/metrics.h"

namespace heron::serve {

namespace {

constexpr const char *kManifestName = "MANIFEST";
constexpr const char *kSnapshotPrefix = "snapshot-";
constexpr const char *kSnapshotSuffix = ".jsonl";
constexpr const char *kSegmentPrefix = "seg-";
constexpr const char *kSegmentSuffix = ".wal";
constexpr const char *kQuarantineSuffix = ".quarantined";

/**
 * Parse "<prefix>NNNNNN<suffix>" into its id; -1 when @p name does
 * not match the pattern (quarantined files and temp files fall out
 * here, which is what keeps them from being replayed).
 */
int64_t
parse_file_id(const std::string &name, const char *prefix,
              const char *suffix)
{
    size_t plen = std::strlen(prefix);
    size_t slen = std::strlen(suffix);
    if (name.size() <= plen + slen)
        return -1;
    if (name.compare(0, plen, prefix) != 0)
        return -1;
    if (name.compare(name.size() - slen, slen, suffix) != 0)
        return -1;
    int64_t id = 0;
    for (size_t i = plen; i < name.size() - slen; ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return -1;
        id = id * 10 + (c - '0');
    }
    return id;
}

/** mkdir -p: create every missing component of @p dir. */
bool
make_dirs(const std::string &dir)
{
    if (dir.empty())
        return false;
    std::string partial;
    size_t pos = 0;
    while (pos <= dir.size()) {
        size_t slash = dir.find('/', pos);
        if (slash == std::string::npos)
            slash = dir.size();
        partial = dir.substr(0, slash);
        pos = slash + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0755) != 0 &&
            errno != EEXIST)
            return false;
    }
    return true;
}

/** fsync the directory so a new entry survives power loss. */
void
sync_dir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

std::string
read_text_file(const std::string &path, bool *found)
{
    *found = false;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        return {};
    *found = true;
    std::string text;
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof(buf))) > 0)
        text.append(buf, static_cast<size_t>(n));
    ::close(fd);
    return text;
}

} // namespace

const char *
store_state_name(StoreState state)
{
    switch (state) {
    case StoreState::kHealthy:
        return "healthy";
    case StoreState::kDegraded:
        return "degraded";
    }
    return "unknown";
}

std::string
DurableStoreStats::to_json() const
{
    std::ostringstream out;
    out << "{\"state\":\"" << store_state_name(state) << "\""
        << ",\"appends\":" << appends
        << ",\"append_failures\":" << append_failures
        << ",\"rotations\":" << rotations
        << ",\"compactions\":" << compactions
        << ",\"compaction_failures\":" << compaction_failures
        << ",\"quarantined\":" << quarantined
        << ",\"torn_tails\":" << torn_tails
        << ",\"replayed\":" << replayed
        << ",\"salvaged\":" << salvaged
        << ",\"degraded_entries\":" << degraded_entries
        << ",\"recoveries\":" << recoveries
        << ",\"probes\":" << probes
        << ",\"unflushed\":" << unflushed
        << ",\"live_segments\":" << live_segments
        << ",\"records\":" << records
        << ",\"last_replay_ms\":" << last_replay_ms << "}";
    return out.str();
}

DurableStore::DurableStore(DurableStoreConfig config)
    : config_(std::move(config))
{
}

DurableStore::~DurableStore()
{
    close();
}

std::string
DurableStore::file_path(const char *prefix, int64_t id,
                        const char *suffix) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "%s%06lld%s", prefix,
                  static_cast<long long>(id), suffix);
    return config_.dir + "/" + name;
}

std::string
DurableStore::manifest_path() const
{
    return config_.dir + "/" + kManifestName;
}

bool
DurableStore::quarantine(const std::string &path)
{
    std::string aside = path + kQuarantineSuffix;
    if (std::rename(path.c_str(), aside.c_str()) != 0) {
        HERON_WARN << "store: cannot quarantine " << path << ": "
                   << std::strerror(errno);
        return false;
    }
    HERON_WARN << "store: quarantined corrupted file " << path
               << " -> " << aside;
    ++stats_.quarantined;
    HERON_COUNTER_INC("serve.store.quarantined");
    return true;
}

void
DurableStore::ingest_locked(autotune::TuningRecord record)
{
    if (record.seq >= next_seq_)
        next_seq_ = record.seq + 1;
    auto it = records_.find(record.workload);
    if (it == records_.end()) {
        std::string key = record.workload;
        records_.emplace(std::move(key), std::move(record));
    } else if (record.gflops > it->second.gflops) {
        it->second = std::move(record);
    }
}

bool
DurableStore::write_manifest_locked()
{
    std::ostringstream out;
    out << "{\"v\":1,\"snapshot\":\""
        << json_escape(snapshot_file_) << "\",\"segments_from\":"
        << segments_from_ << "}\n";
    return atomic_write_file(manifest_path(), out.str());
}

bool
DurableStore::open_active_locked(std::string *error)
{
    int64_t id = next_file_id_++;
    std::string path =
        file_path(kSegmentPrefix, id, kSegmentSuffix);
    int fd = -1;
    if (fsfault::injected("store.open")) {
        errno = ENOSPC;
    } else {
        fd = ::open(path.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                    0644);
    }
    if (fd < 0) {
        if (error)
            *error = "cannot create segment " + path + ": " +
                     std::strerror(errno);
        return false;
    }
    // The directory entry must be durable before any append into
    // this segment is acknowledged, or a crash could drop the whole
    // segment while its records were already served as durable.
    sync_dir(config_.dir);
    if (active_fd_ >= 0)
        ::close(active_fd_);
    active_fd_ = fd;
    active_id_ = id;
    active_bytes_ = 0;
    return true;
}

bool
DurableStore::open(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what;
        HERON_WARN << "store: open failed: " << what;
        return false;
    };
    if (!make_dirs(config_.dir))
        return fail("cannot create store directory " +
                    config_.dir + ": " + std::strerror(errno));
    fs_capabilities();

    auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);

    // Manifest: which snapshot is current and where live segments
    // start. Absent or corrupt -> conservative full scan.
    int64_t manifest_snapshot_id = -1;
    bool have_manifest = false;
    {
        bool found = false;
        std::string text =
            read_text_file(manifest_path(), &found);
        if (found) {
            auto snap = json_extract(text, "snapshot");
            auto from = json_extract(text, "segments_from");
            if (snap && from) {
                have_manifest = true;
                snapshot_file_ = *snap;
                segments_from_ = std::atoll(from->c_str());
                if (!snapshot_file_.empty())
                    manifest_snapshot_id = parse_file_id(
                        snapshot_file_, kSnapshotPrefix,
                        kSnapshotSuffix);
            } else {
                quarantine(manifest_path());
                snapshot_file_.clear();
                segments_from_ = 0;
            }
        }
    }

    // Scan the directory for snapshots and segments.
    std::vector<int64_t> snapshot_ids;
    std::vector<int64_t> segment_ids;
    DIR *dir = ::opendir(config_.dir.c_str());
    if (dir == nullptr)
        return fail("cannot scan store directory " + config_.dir);
    while (dirent *ent = ::readdir(dir)) {
        std::string name = ent->d_name;
        int64_t id = parse_file_id(name, kSnapshotPrefix,
                                   kSnapshotSuffix);
        if (id >= 0) {
            snapshot_ids.push_back(id);
            continue;
        }
        id = parse_file_id(name, kSegmentPrefix, kSegmentSuffix);
        if (id >= 0)
            segment_ids.push_back(id);
    }
    ::closedir(dir);
    std::sort(snapshot_ids.begin(), snapshot_ids.end());
    std::sort(segment_ids.begin(), segment_ids.end());

    // Without a manifest the newest snapshot is authoritative (each
    // snapshot folds in everything before its swap) and every
    // segment on disk is replayed over it.
    if (!have_manifest && !snapshot_ids.empty()) {
        manifest_snapshot_id = snapshot_ids.back();
        snapshot_file_ = file_path(kSnapshotPrefix,
                                   manifest_snapshot_id,
                                   kSnapshotSuffix);
        snapshot_file_ =
            snapshot_file_.substr(config_.dir.size() + 1);
    }

    int64_t quarantined_before = stats_.quarantined;

    // Replay the snapshot first, then segments in id order, so a
    // segment's newer record wins over the snapshot's.
    auto replay_file = [&](const std::string &path,
                           bool is_segment) {
        autotune::RecordReadStats rs;
        bool found = false;
        auto recs =
            autotune::read_records_file(path, &rs, &found);
        if (!found)
            return false;
        stats_.torn_tails += rs.recovered_truncations;
        bool damaged = rs.corrupt();
        for (auto &rec : recs)
            ingest_locked(std::move(rec));
        stats_.replayed += static_cast<int64_t>(recs.size());
        if (damaged) {
            // Keep the CRC-valid records we just salvaged and move
            // the damaged file aside for post-mortem; a recovery
            // snapshot below re-persists the salvage.
            stats_.salvaged += static_cast<int64_t>(recs.size());
            quarantine(path);
            return false;
        }
        (void)is_segment;
        return true;
    };

    if (manifest_snapshot_id >= 0) {
        std::string path = config_.dir + "/" + snapshot_file_;
        if (!replay_file(path, false)) {
            // Missing or quarantined: fall back to replaying every
            // segment on disk.
            snapshot_file_.clear();
            segments_from_ = 0;
        }
    } else {
        snapshot_file_.clear();
    }

    // Obsolete files: snapshots other than the loaded one, and
    // segments already folded into it.
    for (int64_t id : snapshot_ids) {
        if (id == manifest_snapshot_id)
            continue;
        ::unlink(file_path(kSnapshotPrefix, id, kSnapshotSuffix)
                     .c_str());
    }
    for (int64_t id : segment_ids) {
        std::string path =
            file_path(kSegmentPrefix, id, kSegmentSuffix);
        if (id < segments_from_) {
            ::unlink(path.c_str());
            continue;
        }
        if (replay_file(path, true))
            sealed_.push_back(Segment{id, path});
    }

    int64_t max_id = 0;
    if (!snapshot_ids.empty())
        max_id = std::max(max_id, snapshot_ids.back());
    if (!segment_ids.empty())
        max_id = std::max(max_id, segment_ids.back());
    next_file_id_ = max_id + 1;

    std::string why;
    if (!open_active_locked(&why))
        return fail(why);
    segments_from_ = sealed_.empty() ? active_id_
                                     : sealed_.front().id;
    if (!write_manifest_locked())
        return fail("cannot write manifest in " + config_.dir);

    bool needs_recovery_snapshot =
        stats_.quarantined > quarantined_before;
    stats_.records = static_cast<int64_t>(records_.size());
    stats_.live_segments = static_cast<int64_t>(sealed_.size());
    stats_.last_replay_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    opened_ = true;
    HERON_INFO << "store: opened " << config_.dir << " ("
               << records_.size() << " record(s), "
               << sealed_.size() << " live segment(s), replay "
               << stats_.last_replay_ms << " ms)";
    lock.unlock();

    compactor_ = std::thread([this] { compactor_loop(); });

    // Salvaged records live only in memory and in quarantined
    // files; persist them now so a second crash cannot drop them.
    if (needs_recovery_snapshot && !compact_now())
        HERON_WARN << "store: recovery snapshot failed; salvaged "
                      "records remain in quarantined files only";
    return true;
}

void
DurableStore::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (closing_)
            return;
        closing_ = true;
    }
    compact_cv_.notify_all();
    if (compactor_.joinable())
        compactor_.join();
    std::lock_guard<std::mutex> lock(mu_);
    if (active_fd_ >= 0) {
        ::close(active_fd_);
        active_fd_ = -1;
    }
    opened_ = false;
}

std::vector<autotune::TuningRecord>
DurableStore::records() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<autotune::TuningRecord> out;
    out.reserve(records_.size());
    for (const auto &[sig, rec] : records_)
        out.push_back(rec);
    return out;
}

bool
DurableStore::raw_append_locked(
    const autotune::TuningRecord &record)
{
    if (active_fd_ < 0)
        return false;
    std::string line = autotune::crc_frame(record.to_json());
    line += '\n';
    if (fsfault::injected("store.append"))
        return false;
    const char *data = line.data();
    size_t left = line.size();
    while (left > 0) {
        ssize_t n = ::write(active_fd_, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        left -= static_cast<size_t>(n);
    }
    if (config_.fsync_data &&
        (fsfault::injected("store.fsync") ||
         ::fsync(active_fd_) != 0))
        return false;
    active_bytes_ += line.size();
    ++stats_.appends;
    HERON_COUNTER_INC("serve.store.appends");
    return true;
}

void
DurableStore::enter_degraded_locked(
    const autotune::TuningRecord &record)
{
    ++stats_.append_failures;
    HERON_COUNTER_INC("serve.store.append_failures");
    auto it = unflushed_.find(record.workload);
    if (it == unflushed_.end())
        unflushed_.emplace(record.workload, record);
    else if (record.gflops > it->second.gflops)
        it->second = record;
    stats_.unflushed = static_cast<int64_t>(unflushed_.size());
    HERON_GAUGE_SET("serve.store.unflushed",
                    static_cast<double>(unflushed_.size()));
    if (state_ == StoreState::kHealthy) {
        state_ = StoreState::kDegraded;
        ++stats_.degraded_entries;
        last_probe_ = std::chrono::steady_clock::now();
        HERON_GAUGE_SET("serve.store.degraded", 1.0);
        HERON_WARN << "store: persist failure ("
                   << std::strerror(errno)
                   << "); entering degraded read-only mode, "
                      "retrying every "
                   << config_.retry_backoff_ms << " ms";
    }
}

void
DurableStore::maybe_probe_locked(
    std::chrono::steady_clock::time_point now, bool force)
{
    if (state_ != StoreState::kDegraded)
        return;
    double since_ms =
        std::chrono::duration<double, std::milli>(now -
                                                  last_probe_)
            .count();
    if (!force && since_ms < config_.retry_backoff_ms)
        return;
    last_probe_ = now;
    ++stats_.probes;

    // The active segment may hold a torn partial line from the
    // failed write; appending after it would corrupt the next
    // record's framing. Always rotate to a fresh segment first.
    if (active_fd_ >= 0 && active_bytes_ > 0) {
        sealed_.push_back(Segment{
            active_id_,
            file_path(kSegmentPrefix, active_id_,
                      kSegmentSuffix)});
        ++stats_.rotations;
    }
    if (active_fd_ >= 0) {
        ::close(active_fd_);
        active_fd_ = -1;
    }
    if (!open_active_locked(nullptr))
        return; // still degraded; next probe retries
    while (!unflushed_.empty()) {
        auto it = unflushed_.begin();
        autotune::TuningRecord rec = it->second;
        rec.seq = next_seq_++;
        if (!raw_append_locked(rec))
            return; // partial recovery; keep the rest stashed
        ingest_locked(std::move(rec));
        unflushed_.erase(it);
    }
    stats_.unflushed = 0;
    HERON_GAUGE_SET("serve.store.unflushed", 0.0);
    state_ = StoreState::kHealthy;
    ++stats_.recoveries;
    stats_.records = static_cast<int64_t>(records_.size());
    stats_.live_segments = static_cast<int64_t>(sealed_.size());
    HERON_COUNTER_INC("serve.store.recoveries");
    HERON_GAUGE_SET("serve.store.degraded", 0.0);
    HERON_INFO << "store: persist path recovered; leaving "
                  "degraded mode";
}

bool
DurableStore::append(const autotune::TuningRecord &record)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_) {
        ++stats_.append_failures;
        return false;
    }
    auto now = std::chrono::steady_clock::now();
    if (state_ == StoreState::kDegraded) {
        maybe_probe_locked(now);
        if (state_ == StoreState::kDegraded) {
            autotune::TuningRecord rec = record;
            enter_degraded_locked(rec);
            ingest_locked(std::move(rec));
            stats_.records =
                static_cast<int64_t>(records_.size());
            return false;
        }
    }

    autotune::TuningRecord rec = record;
    rec.seq = next_seq_++;
    if (!raw_append_locked(rec)) {
        enter_degraded_locked(rec);
        ingest_locked(std::move(rec));
        stats_.records = static_cast<int64_t>(records_.size());
        return false;
    }
    ingest_locked(std::move(rec));
    stats_.records = static_cast<int64_t>(records_.size());

    if (active_bytes_ >= config_.segment_max_bytes) {
        sealed_.push_back(Segment{
            active_id_,
            file_path(kSegmentPrefix, active_id_,
                      kSegmentSuffix)});
        ++stats_.rotations;
        HERON_COUNTER_INC("serve.store.rotations");
        if (!open_active_locked(nullptr)) {
            // Keep appending to the oversized segment; durability
            // is intact, only the size bound slips.
            sealed_.pop_back();
            --stats_.rotations;
            int fd = ::open(
                file_path(kSegmentPrefix, active_id_,
                          kSegmentSuffix)
                    .c_str(),
                O_WRONLY | O_APPEND | O_CLOEXEC);
            active_fd_ = fd;
            if (fd < 0)
                HERON_WARN << "store: segment rotation failed and "
                              "reopen failed; next append will "
                              "degrade";
        }
        stats_.live_segments =
            static_cast<int64_t>(sealed_.size());
        if (config_.compact_min_segments > 0 &&
            sealed_.size() >= static_cast<size_t>(
                                  config_.compact_min_segments)) {
            compact_requested_ = true;
            compact_cv_.notify_all();
        }
    }
    return true;
}

void
DurableStore::tick(std::chrono::steady_clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!opened_)
        return;
    maybe_probe_locked(now);
}

bool
DurableStore::do_compact()
{
    std::lock_guard<std::mutex> run(compact_run_mu_);
    std::vector<autotune::TuningRecord> records;
    std::vector<Segment> obsolete;
    std::string old_snapshot;
    int64_t new_id;
    int64_t boundary;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!opened_)
            return false;
        records.reserve(records_.size());
        for (const auto &[sig, rec] : records_)
            records.push_back(rec);
        obsolete = sealed_;
        old_snapshot = snapshot_file_;
        new_id = next_file_id_++;
        boundary = active_id_;
    }
    std::sort(records.begin(), records.end(),
              [](const autotune::TuningRecord &a,
                 const autotune::TuningRecord &b) {
                  return a.workload < b.workload;
              });
    for (size_t i = 0; i < records.size(); ++i)
        records[i].seq = static_cast<int64_t>(i) + 1;
    std::string path =
        file_path(kSnapshotPrefix, new_id, kSnapshotSuffix);
    if (!atomic_write_file(path,
                           autotune::write_records(records))) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.compaction_failures;
        HERON_WARN << "store: compaction snapshot write failed";
        return false;
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        std::string old_file = snapshot_file_;
        int64_t old_from = segments_from_;
        snapshot_file_ = path.substr(config_.dir.size() + 1);
        segments_from_ = boundary;
        if (!write_manifest_locked()) {
            snapshot_file_ = old_file;
            segments_from_ = old_from;
            ++stats_.compaction_failures;
            ::unlink(path.c_str());
            HERON_WARN << "store: compaction manifest swap failed";
            return false;
        }
        ++stats_.compactions;
        HERON_COUNTER_INC("serve.store.compactions");
        // Everything before the boundary is folded into the new
        // snapshot; segments sealed after the copy stay live.
        sealed_.erase(
            std::remove_if(sealed_.begin(), sealed_.end(),
                           [&](const Segment &seg) {
                               if (seg.id >= boundary)
                                   return false;
                               ::unlink(seg.path.c_str());
                               return true;
                           }),
            sealed_.end());
        stats_.live_segments =
            static_cast<int64_t>(sealed_.size());
        if (!old_snapshot.empty() &&
            old_snapshot != snapshot_file_)
            ::unlink(
                (config_.dir + "/" + old_snapshot).c_str());

        // The swap persisted every in-memory record, including any
        // stashed during a degraded spell — attempt recovery now
        // rather than waiting out the backoff.
        if (state_ == StoreState::kDegraded) {
            unflushed_.clear();
            stats_.unflushed = 0;
            HERON_GAUGE_SET("serve.store.unflushed", 0.0);
            maybe_probe_locked(std::chrono::steady_clock::now(),
                               /*force=*/true);
        }
    }
    return true;
}

bool
DurableStore::compact_now()
{
    return do_compact();
}

void
DurableStore::compactor_loop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!closing_) {
        compact_cv_.wait(lock, [this] {
            return closing_ || compact_requested_;
        });
        if (closing_)
            break;
        compact_requested_ = false;
        lock.unlock();
        do_compact();
        lock.lock();
    }
}

StoreState
DurableStore::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

DurableStoreStats
DurableStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    DurableStoreStats out = stats_;
    out.state = state_;
    out.unflushed = static_cast<int64_t>(unflushed_.size());
    out.live_segments = static_cast<int64_t>(sealed_.size());
    out.records = static_cast<int64_t>(records_.size());
    return out;
}

} // namespace heron::serve
