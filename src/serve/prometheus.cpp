#include "serve/prometheus.h"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.h"

namespace heron::serve {

namespace {

/** heron_ prefix + [a-zA-Z0-9_:] body ('.' and '-' become '_'). */
std::string
sanitize_name(const std::string &name)
{
    std::string out = "heron_";
    for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) ||
            c == '_' || c == ':')
            out += c;
        else
            out += '_';
    }
    return out;
}

void
emit_header(std::ostringstream &out, const std::string &name,
            const char *type, const std::string &source)
{
    out << "# HELP " << name << " Heron metric " << source << "\n";
    out << "# TYPE " << name << " " << type << "\n";
}

} // namespace

std::string
render_prometheus(const metrics::MetricsSnapshot &snapshot,
                  const std::vector<RequestMetrics::Named> &windows,
                  const SloStatus *slo)
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    // Names already emitted: a collision after sanitization would
    // produce a duplicate family, which scrapers reject outright.
    std::set<std::string> seen;
    auto claim = [&](const std::string &name) {
        return seen.insert(name).second;
    };

    for (const auto &[name, value] : snapshot.counters) {
        std::string prom = sanitize_name(name);
        if (!claim(prom))
            continue;
        emit_header(out, prom, "counter", name);
        out << prom << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        std::string prom = sanitize_name(name);
        if (!claim(prom))
            continue;
        emit_header(out, prom, "gauge", name);
        out << prom << " " << value << "\n";
    }
    for (const auto &[name, h] : snapshot.histograms) {
        std::string prom = sanitize_name(name);
        if (!claim(prom))
            continue;
        emit_header(out, prom, "histogram", name);
        int64_t cum = 0;
        for (size_t b = 0; b < h.counts.size(); ++b) {
            cum += h.counts[b];
            if (b < h.bounds.size())
                out << prom << "_bucket{le=\"" << h.bounds[b]
                    << "\"} " << cum << "\n";
            else
                out << prom << "_bucket{le=\"+Inf\"} " << cum
                    << "\n";
        }
        out << prom << "_sum " << h.sum << "\n";
        out << prom << "_count " << h.count << "\n";
    }

    for (const auto &named : windows) {
        std::string prom = sanitize_name(named.name);
        if (!claim(prom))
            continue;
        const auto &w = named.window;
        emit_header(out, prom, "summary", named.name);
        // Literal labels: streaming 0.95 at max_digits10 precision
        // would render quantile="0.94999999999999996".
        struct {
            const char *label;
            double p;
        } quantiles[] = {{"0.5", 50.0},
                         {"0.95", 95.0},
                         {"0.99", 99.0}};
        for (const auto &q : quantiles)
            out << prom << "{quantile=\"" << q.label << "\"} "
                << w.percentile(q.p) << "\n";
        out << prom << "_sum " << w.sum << "\n";
        out << prom << "_count " << w.count << "\n";
        std::string span = prom + "_window_seconds";
        if (claim(span)) {
            emit_header(out, span, "gauge", named.name);
            out << span << " " << w.window_seconds << "\n";
        }
    }

    if (slo && slo->enabled) {
        struct {
            const char *name;
            double value;
        } gauges[] = {
            {"heron_serve_slo_burning",
             slo->burning ? 1.0 : 0.0},
            {"heron_serve_slo_soft_watermark",
             static_cast<double>(slo->soft_watermark)},
            {"heron_serve_slo_base_soft_watermark",
             static_cast<double>(slo->base_soft_watermark)},
            {"heron_serve_slo_last_p95_us", slo->last_p95_us},
            {"heron_serve_slo_last_error_rate",
             slo->last_error_rate},
        };
        for (const auto &g : gauges) {
            if (!claim(g.name))
                continue;
            emit_header(out, g.name, "gauge", "slo");
            out << g.name << " " << g.value << "\n";
        }
        struct {
            const char *name;
            int64_t value;
        } counters[] = {
            {"heron_serve_slo_evals_total", slo->evals},
            {"heron_serve_slo_shrinks_total", slo->shrinks},
            {"heron_serve_slo_restores_total", slo->restores},
        };
        for (const auto &c : counters) {
            if (!claim(c.name))
                continue;
            emit_header(out, c.name, "counter", "slo");
            out << c.name << " " << c.value << "\n";
        }
    }
    return out.str();
}

PromExporter::PromExporter(std::string host, uint16_t port,
                           RenderFn render)
    : host_(std::move(host)), port_(port), render_(std::move(render))
{
}

PromExporter::~PromExporter()
{
    stop();
}

bool
PromExporter::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton " + host_);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + host_ + ":" + std::to_string(port_));
    if (::listen(listen_fd_, 16) != 0)
        return fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    bound_port_ = ntohs(addr.sin_port);
    running_.store(true);
    thread_ = std::thread([this] { serve_loop(); });
    HERON_INFO << "serve: metrics endpoint on " << host_ << ":"
               << bound_port_ << "/metrics";
    return true;
}

void
PromExporter::stop()
{
    if (!running_.exchange(false)) {
        if (thread_.joinable())
            thread_.join();
        return;
    }
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
PromExporter::serve_loop()
{
    while (running_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        int fd = ::accept4(listen_fd_, nullptr, nullptr,
                           SOCK_CLOEXEC);
        if (fd < 0)
            continue;
        // Read the request head; a scrape is always small. The
        // request-line path routes /healthz, everything else
        // answers the metrics page.
        char buf[4096];
        struct timeval tv{1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ssize_t got = ::recv(fd, buf, sizeof(buf) - 1, 0);
        std::string path;
        if (got > 0) {
            buf[got] = '\0';
            // "GET <path> HTTP/1.x" — take the second token.
            std::string head(buf);
            size_t sp1 = head.find(' ');
            if (sp1 != std::string::npos) {
                size_t sp2 = head.find(' ', sp1 + 1);
                if (sp2 != std::string::npos)
                    path = head.substr(sp1 + 1, sp2 - sp1 - 1);
            }
        }
        std::string body;
        const char *status = "200 OK";
        const char *content_type =
            "text/plain; version=0.0.4; charset=utf-8";
        if (health_ && path == "/healthz") {
            auto [healthy, detail] = health_();
            status = healthy ? "200 OK"
                             : "503 Service Unavailable";
            content_type = "application/json";
            body = detail.empty()
                       ? std::string(healthy ? "{\"status\":\"ok\"}"
                                             : "{\"status\":"
                                               "\"degraded\"}")
                       : detail;
            body += "\n";
        } else {
            body = render_ ? render_() : std::string();
        }
        std::ostringstream response;
        response << "HTTP/1.0 " << status << "\r\n"
                 << "Content-Type: " << content_type << "\r\n"
                 << "Content-Length: " << body.size() << "\r\n"
                 << "Connection: close\r\n\r\n"
                 << body;
        std::string wire = response.str();
        size_t off = 0;
        while (off < wire.size()) {
            ssize_t n = ::send(fd, wire.data() + off,
                               wire.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            off += static_cast<size_t>(n);
        }
        ::close(fd);
    }
}

} // namespace heron::serve
