/**
 * @file
 * AccessLog: a bounded asynchronous JSONL request log. Producers
 * (the event loop, workers) enqueue one-line JSON records without
 * blocking; a writer thread appends them to the file. When the
 * queue is full the record is dropped and counted — a slow disk can
 * never stall the serving path. Healthy requests can be sampled
 * (every Nth); errors, sheds, and slow requests bypass sampling.
 */
#ifndef HERON_SERVE_ACCESS_LOG_H
#define HERON_SERVE_ACCESS_LOG_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

namespace heron::serve {

struct AccessLogConfig {
    /** Log file path ("" = disabled). */
    std::string path;
    /** Max queued lines before drops begin. */
    size_t max_queue = 4096;
    /**
     * Log every Nth non-error request (1 = all). Records appended
     * with always=true skip the sampler.
     */
    int sample_every = 1;
};

/** Counters for the stats/metrics surfaces. */
struct AccessLogStats {
    int64_t written = 0;
    /** Dropped because the queue was full. */
    int64_t dropped = 0;
    /** Skipped by the sampler (not an error; by design). */
    int64_t sampled_out = 0;
};

class AccessLog
{
  public:
    explicit AccessLog(AccessLogConfig config = {});
    ~AccessLog();

    AccessLog(const AccessLog &) = delete;
    AccessLog &operator=(const AccessLog &) = delete;

    /**
     * Open the file (append mode) and start the writer. False with
     * @p error set when the file cannot be opened; the log then
     * stays disabled and append() is a cheap no-op.
     */
    bool open(std::string *error);

    bool enabled() const { return running_; }

    /**
     * Enqueue one line (no trailing newline). Never blocks: a full
     * queue drops the line and bumps the drop counter. @p always
     * bypasses sampling (errors, sheds, slow requests).
     */
    void append(std::string line, bool always = false);

    /** Block until every queued line is on disk (tests/drain). */
    void flush();

    AccessLogStats stats() const;

    /** Test hook: a paused writer lets tests fill the queue. */
    void set_paused(bool paused);

  private:
    AccessLogConfig config_;
    std::ofstream out_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable drained_cv_;
    std::deque<std::string> queue_;
    std::thread writer_;
    bool running_ = false;
    bool stopping_ = false;
    bool paused_ = false;
    bool writing_ = false;
    int64_t sample_counter_ = 0;
    int64_t written_ = 0;
    int64_t dropped_ = 0;
    int64_t sampled_out_ = 0;

    void writer_loop();
};

} // namespace heron::serve

#endif // HERON_SERVE_ACCESS_LOG_H
