#include "serve/graph.h"

#include <algorithm>
#include <unordered_map>

#include "codegen/emitter.h"
#include "support/fs_util.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::serve {

GraphService::GraphService(KernelRegistry &registry,
                           GraphTuneScheduler &scheduler,
                           GraphServiceConfig config)
    : registry_(registry), scheduler_(scheduler),
      config_(std::move(config))
{
}

std::vector<GraphLayer>
GraphService::canonicalize(const ops::Network &network,
                           int64_t *instances) const
{
    // Dedupe: layers that canonicalize to the same WorkloadKey are
    // one workload however many times (and under whatever display
    // names) the network lists them. Counts are summed so the
    // payoff model still sees the full instance weight.
    std::vector<GraphLayer> merged;
    std::unordered_map<WorkloadKey, size_t, WorkloadKeyHash> index;
    *instances = 0;
    for (const auto &layer : network.layers) {
        int64_t count = std::max<int64_t>(1, layer.count);
        *instances += count;
        WorkloadKey key = make_key(layer.workload,
                                   registry_.spec());
        auto it = index.find(key);
        if (it != index.end()) {
            merged[it->second].count += count;
            continue;
        }
        GraphLayer entry;
        entry.workload = layer.workload;
        entry.key = std::move(key);
        entry.count = count;
        index.emplace(entry.key, merged.size());
        merged.push_back(std::move(entry));
    }
    return merged;
}

void
GraphService::fill_status(const TrackedGraph &graph,
                          const std::vector<ScheduledLayer> &plan,
                          GraphResult *result)
{
    result->id = graph.id;
    result->name = graph.name;
    result->layers = static_cast<int64_t>(graph.layers.size());
    result->instances = graph.instances;
    result->deduped = graph.deduped;
    result->emitted = graph.emitted;
    result->library_path = graph.library_path;

    std::vector<double> payoffs(graph.layers.size(), 0.0);
    for (const auto &scheduled : plan)
        payoffs[scheduled.layer] = scheduled.payoff;

    int64_t exact_instances = 0;
    for (size_t i = 0; i < graph.layers.size(); ++i) {
        const GraphLayer &layer = graph.layers[i];
        GraphLayerStatus status;
        status.workload = layer.workload;
        status.key = layer.key.canonical();
        status.count = layer.count;
        status.tier = layer.tier;
        status.distance = layer.distance;
        status.payoff = payoffs[i] > 0.0 ? payoffs[i]
                                         : layer_payoff(layer);
        status.scheduled = graph.scheduled[i];
        switch (layer.tier) {
          case LookupTier::kExact:
            ++result->exact;
            exact_instances += layer.count;
            break;
          case LookupTier::kNearest:
            ++result->nearest;
            break;
          default:
            ++result->miss;
            break;
        }
        result->layer_status.push_back(std::move(status));
    }
    result->coverage =
        graph.instances > 0
            ? static_cast<double>(exact_instances) /
                  static_cast<double>(graph.instances)
            : 1.0;
    result->converged =
        result->exact == result->layers;
}

void
GraphService::maybe_close(TrackedGraph &graph)
{
    if (graph.closed)
        return;
    for (const auto &layer : graph.layers)
        if (layer.tier != LookupTier::kExact)
            return;
    graph.closed = true;
    scheduler_.graph_closed();
}

GraphResult
GraphService::handle_graph(const ops::Network &network,
                           const LookupOptions &options,
                           bool inline_header)
{
    HERON_TRACE_SCOPE("serve/graph");
    requests_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.graph.requests");

    TrackedGraph graph;
    graph.name = network.name;
    graph.layers = canonicalize(network, &graph.instances);
    graph.scheduled.assign(graph.layers.size(), false);
    graph.deduped =
        graph.instances -
        static_cast<int64_t>(graph.layers.size());
    layers_.fetch_add(static_cast<int64_t>(graph.layers.size()),
                      std::memory_order_relaxed);
    deduped_.fetch_add(graph.deduped, std::memory_order_relaxed);
    HERON_COUNTER_ADD("serve.graph.layers",
                      static_cast<int64_t>(graph.layers.size()));
    HERON_COUNTER_ADD("serve.graph.deduped", graph.deduped);

    // One batched registry pass for every distinct layer. The
    // scheduler — not registry key order — decides what gets tuned,
    // so per-lookup miss dispatch is forced off.
    std::vector<ops::Workload> queries;
    queries.reserve(graph.layers.size());
    for (const auto &layer : graph.layers)
        queries.push_back(layer.workload);
    LookupOptions batch_options = options;
    batch_options.dispatch_miss = false;
    std::vector<autotune::NetworkLayerSpec> specs;
    specs.reserve(graph.layers.size());
    {
        HERON_TRACE_SCOPE("serve/graph_resolve");
        auto results =
            registry_.lookup_batch(queries, batch_options);
        for (size_t i = 0; i < graph.layers.size(); ++i) {
            GraphLayer &layer = graph.layers[i];
            layer.tier = results[i].tier;
            layer.distance = results[i].distance;
            autotune::NetworkLayerSpec spec;
            spec.workload = layer.workload;
            spec.count = layer.count;
            if (results[i].hit())
                spec.record = results[i].record;
            specs.push_back(std::move(spec));
        }
    }

    // Payoff-ordered tune plan for whatever did not answer exact.
    scheduler_.graph_opened();
    auto plan = GraphTuneScheduler::plan(graph.layers,
                                         scheduler_.budget());
    GraphResult result;
    result.scheduled = scheduler_.dispatch(graph.layers, plan);
    for (const auto &scheduled : plan)
        graph.scheduled[scheduled.layer] =
            graph.layers[scheduled.layer].tier !=
            LookupTier::kExact;

    // One library for the whole model: deduped kernels emitted
    // once, a dispatch function keyed on layer index.
    {
        HERON_TRACE_SCOPE("serve/graph_emit");
        autotune::LibraryBuilder builder(registry_.spec(), {});
        auto library = builder.emit_network(network.name, specs);
        graph.emitted = library.emitted;
        emitted_.fetch_add(library.emitted,
                           std::memory_order_relaxed);
        HERON_COUNTER_ADD("serve.graph.emitted", library.emitted);

        std::string library_name =
            "heron_" +
            codegen::sanitize_identifier(network.name);
        {
            std::lock_guard<std::mutex> lock(mu_);
            graph.id = next_id_++;
        }
        if (!config_.emit_dir.empty()) {
            graph.library_path =
                config_.emit_dir + "/graph_" +
                std::to_string(graph.id) + "_" +
                codegen::sanitize_identifier(network.name) + ".h";
            if (!atomic_write_file(
                    graph.library_path,
                    library.emit_header(library_name))) {
                HERON_WARN << "graph " << graph.id
                           << ": cannot write "
                           << graph.library_path;
                graph.library_path.clear();
            }
        }
        if (inline_header)
            result.library_header =
                library.emit_header(library_name);
    }

    fill_status(graph, plan, &result);

    {
        std::lock_guard<std::mutex> lock(mu_);
        maybe_close(graph);
        graphs_.emplace(graph.id, std::move(graph));
        while (graphs_.size() > std::max<size_t>(
                                    1, config_.max_graphs)) {
            auto oldest = graphs_.begin();
            if (!oldest->second.closed)
                scheduler_.graph_closed();
            graphs_.erase(oldest);
        }
    }
    return result;
}

std::optional<GraphResult>
GraphService::handle_status(int64_t id)
{
    HERON_TRACE_SCOPE("serve/graph_status");
    status_requests_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.graph.status_requests");

    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(id);
    if (it == graphs_.end())
        return std::nullopt;
    TrackedGraph &graph = it->second;

    // Re-peek unresolved layers: peek() is a pure exact probe, so
    // polling for convergence never perturbs the tier counters or
    // the negative cache it is reporting on.
    for (size_t i = 0; i < graph.layers.size(); ++i) {
        GraphLayer &layer = graph.layers[i];
        if (layer.tier == LookupTier::kExact)
            continue;
        if (registry_.peek(layer.key)) {
            layer.tier = LookupTier::kExact;
            layer.distance = 0.0;
            graph.scheduled[i] = false;
        }
    }

    // Re-dispatch whatever still misses under the current budget:
    // an earlier enqueue may have been rejected (full queue) or a
    // tune may have failed; the poll is the retry loop.
    GraphResult result;
    std::vector<ScheduledLayer> plan;
    if (!graph.closed) {
        plan = GraphTuneScheduler::plan(graph.layers,
                                        scheduler_.budget());
        result.scheduled = scheduler_.dispatch(graph.layers, plan);
        for (const auto &scheduled : plan)
            graph.scheduled[scheduled.layer] =
                graph.layers[scheduled.layer].tier !=
                LookupTier::kExact;
    }

    fill_status(graph, plan, &result);
    maybe_close(graph);
    return result;
}

GraphServiceStats
GraphService::stats() const
{
    GraphServiceStats stats;
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.status_requests =
        status_requests_.load(std::memory_order_relaxed);
    stats.layers = layers_.load(std::memory_order_relaxed);
    stats.deduped = deduped_.load(std::memory_order_relaxed);
    stats.emitted = emitted_.load(std::memory_order_relaxed);
    stats.scheduled = scheduler_.scheduled();
    stats.active = scheduler_.active_graphs();
    return stats;
}

} // namespace heron::serve
