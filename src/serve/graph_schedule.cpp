#include "serve/graph_schedule.h"

#include <algorithm>
#include <limits>

#include "support/metrics.h"
#include "support/trace.h"

namespace heron::serve {

double
tier_gap(LookupTier tier, double distance)
{
    switch (tier) {
      case LookupTier::kExact:
        return 0.0;
      case LookupTier::kNearest:
        // A fallback serves a *validated* schedule, just one tuned
        // for a nearby shape: the farther the donor, the less its
        // measured performance says about this shape. Saturates
        // below 1 so any fallback outranks nothing at all.
        return distance / (1.0 + distance);
      case LookupTier::kNegative:
      case LookupTier::kMiss:
        return 1.0;
    }
    return 1.0;
}

double
layer_payoff(const GraphLayer &layer)
{
    return static_cast<double>(layer.count) *
           static_cast<double>(layer.workload.flops()) *
           tier_gap(layer.tier, layer.distance);
}

GraphTuneScheduler::GraphTuneScheduler(TuneQueue *queue)
    : queue_(queue)
{
}

std::vector<ScheduledLayer>
GraphTuneScheduler::plan(const std::vector<GraphLayer> &layers,
                         size_t budget)
{
    std::vector<ScheduledLayer> planned;
    for (size_t i = 0; i < layers.size(); ++i) {
        double payoff = layer_payoff(layers[i]);
        if (payoff > 0.0)
            planned.push_back({i, payoff});
    }
    std::sort(planned.begin(), planned.end(),
              [&](const ScheduledLayer &a, const ScheduledLayer &b) {
                  if (a.payoff != b.payoff)
                      return a.payoff > b.payoff;
                  if (layers[a.layer].count != layers[b.layer].count)
                      return layers[a.layer].count >
                             layers[b.layer].count;
                  return layers[a.layer].key.canonical() <
                         layers[b.layer].key.canonical();
              });
    if (planned.size() > budget)
        planned.resize(budget);
    return planned;
}

size_t
GraphTuneScheduler::budget_for(size_t queue_capacity) const
{
    int64_t active =
        std::max<int64_t>(1, active_.load(std::memory_order_relaxed));
    return std::max<size_t>(
        1, queue_capacity / static_cast<size_t>(active));
}

size_t
GraphTuneScheduler::budget() const
{
    // Detached (test) schedulers plan everything: there is no queue
    // to protect from a single graph's appetite.
    if (queue_ == nullptr)
        return std::numeric_limits<size_t>::max();
    return budget_for(queue_->capacity());
}

int
GraphTuneScheduler::dispatch(
    const std::vector<GraphLayer> &layers,
    const std::vector<ScheduledLayer> &planned)
{
    if (queue_ == nullptr)
        return 0;
    HERON_TRACE_SCOPE("serve/graph_dispatch");
    int accepted = 0;
    for (const auto &scheduled : planned) {
        auto outcome =
            queue_->enqueue(layers[scheduled.layer].workload);
        if (outcome == EnqueueOutcome::kAccepted) {
            ++accepted;
            HERON_COUNTER_INC("serve.graph.scheduled");
        }
    }
    scheduled_.fetch_add(accepted, std::memory_order_relaxed);
    return accepted;
}

void
GraphTuneScheduler::graph_opened()
{
    active_.fetch_add(1, std::memory_order_relaxed);
}

void
GraphTuneScheduler::graph_closed()
{
    active_.fetch_sub(1, std::memory_order_relaxed);
}

int64_t
GraphTuneScheduler::active_graphs() const
{
    return active_.load(std::memory_order_relaxed);
}

int64_t
GraphTuneScheduler::scheduled() const
{
    return scheduled_.load(std::memory_order_relaxed);
}

} // namespace heron::serve
