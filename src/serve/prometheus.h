/**
 * @file
 * Prometheus text-exposition rendering + a minimal HTTP exporter.
 *
 * render_prometheus() turns the process-wide metrics snapshot, the
 * per-server window snapshots, and the SLO status into exposition
 * format 0.0.4: counters/gauges with HELP/TYPE lines, histograms as
 * cumulative monotone `le` bucket series ending in +Inf, and the
 * sliding windows as summaries with quantile labels (a window IS a
 * pre-aggregated summary; exporting it as a cumulative histogram
 * would lie about its time base). Metric names are sanitized to
 * [a-zA-Z0-9_:] and prefixed heron_; two source names that sanitize
 * identically keep only the first (a duplicate family is a scrape
 * error in Prometheus).
 *
 * PromExporter is a deliberately tiny HTTP/1.0 server: one thread,
 * one request per connection. GET /healthz answers the liveness/
 * readiness probe (200 "ok" when healthy, 503 "degraded" while the
 * durable store's persist path is failing) when a health callback
 * is installed; every other path answers the metrics page. It
 * exists so `curl host:port/metrics` works against a serving binary
 * without an HTTP framework dependency.
 */
#ifndef HERON_SERVE_PROMETHEUS_H
#define HERON_SERVE_PROMETHEUS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/observe.h"
#include "serve/slo.h"
#include "support/metrics.h"

namespace heron::serve {

/** Render one exposition page. Any input may be empty/null. */
std::string
render_prometheus(const metrics::MetricsSnapshot &snapshot,
                  const std::vector<RequestMetrics::Named> &windows,
                  const SloStatus *slo);

/** Serves text from a render callback over bare HTTP. */
class PromExporter
{
  public:
    using RenderFn = std::function<std::string()>;
    /**
     * Health probe: healthy flag + body text (e.g. the store stats
     * JSON). Drives /healthz's 200-vs-503 status.
     */
    using HealthFn = std::function<std::pair<bool, std::string>()>;

    /** @p render is called per scrape, on the exporter thread. */
    PromExporter(std::string host, uint16_t port, RenderFn render);
    ~PromExporter();

    /** Install the /healthz callback (before start()). */
    void set_health(HealthFn health) { health_ = std::move(health); }

    PromExporter(const PromExporter &) = delete;
    PromExporter &operator=(const PromExporter &) = delete;

    /** Bind + listen + spawn. False with @p error on failure. */
    bool start(std::string *error);

    /** Bound port (after start; useful with port 0). */
    uint16_t port() const { return bound_port_; }

    void stop();

  private:
    std::string host_;
    uint16_t port_;
    RenderFn render_;
    HealthFn health_;
    int listen_fd_ = -1;
    uint16_t bound_port_ = 0;
    std::atomic<bool> running_{false};
    std::thread thread_;

    void serve_loop();
};

} // namespace heron::serve

#endif // HERON_SERVE_PROMETHEUS_H
