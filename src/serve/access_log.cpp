#include "serve/access_log.h"

#include <vector>

#include "support/logging.h"
#include "support/metrics.h"

namespace heron::serve {

AccessLog::AccessLog(AccessLogConfig config)
    : config_(std::move(config))
{
    if (config_.max_queue < 1)
        config_.max_queue = 1;
    if (config_.sample_every < 1)
        config_.sample_every = 1;
}

AccessLog::~AccessLog()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        paused_ = false;
    }
    cv_.notify_all();
    if (writer_.joinable())
        writer_.join();
}

bool
AccessLog::open(std::string *error)
{
    if (config_.path.empty()) {
        if (error)
            *error = "access log path is empty";
        return false;
    }
    out_.open(config_.path, std::ios::app);
    if (!out_.is_open()) {
        if (error)
            *error = "cannot open access log " + config_.path;
        return false;
    }
    running_ = true;
    writer_ = std::thread([this] { writer_loop(); });
    return true;
}

void
AccessLog::append(std::string line, bool always)
{
    if (!running_)
        return;
    bool notify = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!always) {
            if (++sample_counter_ % config_.sample_every != 0) {
                ++sampled_out_;
                return;
            }
        }
        if (queue_.size() >= config_.max_queue) {
            ++dropped_;
            HERON_COUNTER_INC("serve.access_log.dropped");
            return;
        }
        queue_.push_back(std::move(line));
        notify = true;
    }
    if (notify)
        cv_.notify_one();
}

void
AccessLog::flush()
{
    if (!running_)
        return;
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [&] {
        return (queue_.empty() && !writing_) || stopping_;
    });
}

AccessLogStats
AccessLog::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    AccessLogStats stats;
    stats.written = written_;
    stats.dropped = dropped_;
    stats.sampled_out = sampled_out_;
    return stats;
}

void
AccessLog::set_paused(bool paused)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        paused_ = paused;
    }
    cv_.notify_all();
}

void
AccessLog::writer_loop()
{
    for (;;) {
        std::vector<std::string> batch;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stopping_ ||
                       (!paused_ && !queue_.empty());
            });
            if (queue_.empty() && stopping_)
                break;
            while (!queue_.empty()) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            writing_ = true;
        }
        for (const auto &line : batch)
            out_ << line << "\n";
        // One flush per batch keeps the tail durable without a
        // write(2) per request.
        out_.flush();
        {
            std::lock_guard<std::mutex> lock(mu_);
            written_ += static_cast<int64_t>(batch.size());
            writing_ = false;
        }
        drained_cv_.notify_all();
        HERON_COUNTER_ADD("serve.access_log.written",
                          static_cast<int64_t>(batch.size()));
    }
    out_.flush();
}

} // namespace heron::serve
