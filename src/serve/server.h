/**
 * @file
 * serve::Server: the TCP front-end of the serving layer. An
 * epoll-based event loop speaks the NDJSON protocol (serve/
 * protocol.h) over many concurrent pipelined connections, wrapping
 * one KernelRegistry (+ optional TuneQueue) with the robustness
 * layers a public-facing service needs:
 *
 *   admission control    hard connection cap, per-IP connection
 *                        cap, and request load-shedding: when the
 *                        pending-request watermark is hit — or the
 *                        tune queue is saturated and pending load
 *                        passes the soft watermark — requests are
 *                        answered {"error":"overloaded"} instead of
 *                        queueing unboundedly.
 *   deadline propagation per-request "deadline_ms" budgets thread
 *                        into KernelRegistry::lookup (nearest-tier
 *                        solver budgets shrink to the remaining
 *                        time); requests that expire answer
 *                        {"error":"deadline_exceeded"}.
 *   slow-client defense  idle connections time out; request lines
 *                        are size-capped and oversized ones are
 *                        streamed to the bit bucket (conn.h); each
 *                        connection's output queue is bounded and a
 *                        client that stops reading is disconnected
 *                        on overflow.
 *   graceful drain       request_drain() (wired to SIGTERM by
 *                        heron_serve) stops accepting, finishes
 *                        every accepted in-flight request, flushes,
 *                        persists the store, and exits 0 — with a
 *                        hard-kill fallback timer so a wedged
 *                        client cannot hold the process hostage.
 *
 * Threading: one event-loop thread owns every socket and Conn;
 * `workers` executor threads run the actual request handlers
 * (lookups can cost milliseconds on the nearest tier) and hand
 * responses back through a completion queue. Requests from one
 * connection always run on the same worker, so per-connection
 * pipelined responses stay in request order; load-shed error
 * responses are emitted by the loop thread and may overtake them
 * (responses are correlated by "id").
 */
#ifndef HERON_SERVE_SERVER_H
#define HERON_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/access_log.h"
#include "serve/conn.h"
#include "serve/observe.h"
#include "serve/protocol.h"
#include "serve/registry.h"
#include "serve/slo.h"
#include "serve/store_wal.h"
#include "serve/tune_queue.h"

namespace heron::serve {

/** Server sizing, budgets, and robustness knobs. */
struct ServerConfig {
    /** Bind address (IPv4 dotted quad). */
    std::string host = "127.0.0.1";
    /** Bind port (0 = ephemeral; see Server::port()). */
    uint16_t port = 0;
    /** Hard cap on concurrent connections. */
    int max_connections = 256;
    /** Concurrent-connection cap per peer IP (accept throttle). */
    int max_connections_per_ip = 64;
    /** Request executor threads. */
    int workers = 2;
    /**
     * Hard pending-request watermark: requests admitted to the
     * executor but not yet answered. At the watermark every new
     * request is shed with "overloaded". The soft watermark (half)
     * sheds lookups early when the tune queue is saturated.
     */
    size_t max_pending_requests = 1024;
    /** Per-line byte cap (longer NDJSON lines are rejected). */
    size_t max_line_bytes = 1 << 20;
    /** Per-connection output-queue byte cap (overflow = close). */
    size_t max_output_bytes = 4u << 20;
    /** Idle connections (no progress, no in-flight) are closed. */
    double idle_timeout_ms = 30000.0;
    /** Drain grace period before the hard-kill fallback fires. */
    double drain_grace_ms = 10000.0;
    /** Event-loop housekeeping granularity. */
    double tick_ms = 50.0;
    /** Persist the registry here when draining ("" = off). */
    std::string store_path;
    /**
     * WAL-backed durable store (nullable; preferred over
     * store_path). The tick loop drives its degraded-mode recovery
     * probes and logs state transitions; drain compacts it.
     */
    DurableStore *store = nullptr;
    /**
     * Test hook: stall each worker this long per request, so chaos
     * tests can saturate the pending watermark deterministically.
     */
    double debug_stall_ms = 0.0;
    /** Declarative serving objectives (disabled by default). */
    SloConfig slo;
    /** Sliding-window sizing for the per-server quantiles. */
    RequestMetricsConfig request_metrics;
    /** JSONL access log (path empty = disabled). */
    AccessLogConfig access_log;
    /** Requests slower than this dump a span breakdown (0=off). */
    double slow_request_ms = 0.0;
    /**
     * Whole-network graph serving (nullable = graph requests are
     * rejected). Must outlive the server.
     */
    GraphService *graph = nullptr;
};

/** Monotonic server counters (mirrored to support/metrics). */
struct ServerStats {
    int64_t accepted_conns = 0;
    int64_t closed_conns = 0;
    /** Accepts refused by the connection cap. */
    int64_t rejected_conn_limit = 0;
    /** Accepts refused by the per-IP cap. */
    int64_t rejected_ip_limit = 0;
    int64_t requests = 0;
    int64_t responses = 0;
    /** Requests answered "overloaded" by admission control. */
    int64_t shed_overloaded = 0;
    /** Requests answered "deadline_exceeded". */
    int64_t deadline_exceeded = 0;
    /** Lines over max_line_bytes (discarded, answered with error). */
    int64_t oversized_lines = 0;
    int64_t parse_errors = 0;
    int64_t idle_disconnects = 0;
    /** Clients disconnected for output-queue overflow. */
    int64_t overflow_disconnects = 0;
    /** Drains begun (SIGTERM / shutdown cmd / request_drain). */
    int64_t drains = 0;
    /** Drains finished by the hard-kill fallback. */
    int64_t hard_kills = 0;
    /** SLO-driven soft-watermark shrinks / restores. */
    int64_t slo_shrinks = 0;
    int64_t slo_restores = 0;
    /** Current soft pending-request watermark. */
    size_t soft_watermark = 0;
};

/** What the transport should do after delivering a response. */
enum class RequestAction : uint8_t {
    kNone = 0,
    /** Close this connection once the response is flushed (quit). */
    kCloseConn,
    /** Gracefully drain the whole server (shutdown). */
    kDrainServer,
};

/** execute_request outcome: the response line plus follow-up. */
struct ExecutedRequest {
    std::string response;
    RequestAction action = RequestAction::kNone;
    /** Observability: which tier answered (lookups only). */
    LookupTier tier = LookupTier::kMiss;
    /** False when the response is an error line. */
    bool ok = true;
    bool deadline_exceeded = false;
    /** Registry/command execution time, microseconds. */
    double handle_us = 0.0;
    /** Response formatting time, microseconds. */
    double serialize_us = 0.0;
};

/**
 * Everything execute_request needs, bundled so the TCP workers, the
 * stdio loop, and tests share one handler signature. Only
 * `registry` is required; the observability members are nullable
 * and simply enrich the stats/metrics responses when present.
 */
struct ServeContext {
    KernelRegistry *registry = nullptr;
    TuneQueue *queue = nullptr;
    std::string store_path;
    /** Aborts a blocking "drain" wait (server hard-kill). */
    const std::atomic<bool> *cancel = nullptr;
    /** Windowed quantiles for the metrics response (nullable). */
    const RequestMetrics *request_metrics = nullptr;
    /** Uptime/pid/build for the stats response (nullable). */
    const ServeRuntime *runtime = nullptr;
    /** SLO status for the stats/metrics responses (nullable). */
    const SloController *slo = nullptr;
    /** Durable store for health/stats/save and the degraded flag
     * on miss responses (nullable). */
    DurableStore *store = nullptr;
    /** Graph serving front-end (nullable = graph cmds error). */
    GraphService *graph = nullptr;
};

/**
 * Execute one parsed request against @p ctx: the shared request
 * handler behind both the TCP workers and heron_serve's --stdio
 * loop. @p arrival anchors the request's deadline_ms budget;
 * expired requests answer "deadline_exceeded" without burning
 * solver time.
 */
ExecutedRequest
execute_request(const Request &request,
                std::chrono::steady_clock::time_point arrival,
                const ServeContext &ctx);

/** Legacy convenience overload (tests, simple callers). */
inline ExecutedRequest
execute_request(const Request &request,
                std::chrono::steady_clock::time_point arrival,
                KernelRegistry &registry, TuneQueue *queue,
                const std::string &store_path,
                const std::atomic<bool> *cancel = nullptr)
{
    ServeContext ctx;
    ctx.registry = &registry;
    ctx.queue = queue;
    ctx.store_path = store_path;
    ctx.cancel = cancel;
    return execute_request(request, arrival, ctx);
}

/** The epoll TCP serving front-end (see file header). */
class Server
{
  public:
    /**
     * @p registry and @p queue (nullable) must outlive the server.
     * The queue is used for load signals and the drain/stats
     * commands; miss handling stays wired through the registry's
     * miss handler exactly as in stdio mode.
     */
    Server(KernelRegistry &registry, TuneQueue *queue,
           ServerConfig config = {});

    /** Drains (bounded by drain_grace_ms) and joins. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the event loop + workers. False with
     * @p error set when the socket cannot be bound.
     */
    bool start(std::string *error);

    /** Bound port (valid after start; useful with port = 0). */
    uint16_t port() const { return bound_port_; }

    /**
     * Begin a graceful drain: stop accepting, finish in-flight
     * requests, flush, persist the store, exit the loop. Safe to
     * call from a signal handler (atomic flag + eventfd write) and
     * idempotent.
     */
    void request_drain();

    /**
     * Block until the loop has exited (a drain completed). Returns
     * 0 for a graceful drain, 1 when the hard-kill fallback fired.
     */
    int wait();

    /** request_drain() + wait(). */
    int stop();

    ServerStats stats() const;

    /** Windowed per-endpoint/per-tier quantiles (thread-safe). */
    const RequestMetrics &request_metrics() const
    {
        return request_metrics_;
    }

    /** SLO controller state (zero-value status when disabled). */
    SloStatus slo_status() const;

    /** Access-log accounting (zeros when disabled). */
    AccessLogStats access_log_stats() const
    {
        return access_log_.stats();
    }

  private:
    struct WorkItem {
        uint64_t conn_id = 0;
        Request request;
        std::chrono::steady_clock::time_point arrival;
        /** parse_request() cost, stamped by the loop thread. */
        double parse_us = 0.0;
    };

    struct Completion {
        uint64_t conn_id = 0;
        std::string response;
        RequestAction action = RequestAction::kNone;
        /** Lifecycle record; write_us/total filled at delivery. */
        RequestObservation obs;
    };

    /** One executor thread's queue (per-connection affinity). */
    struct Worker {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<WorkItem> items;
        std::thread thread;
    };

    KernelRegistry &registry_;
    TuneQueue *queue_;
    ServerConfig config_;

    /** Observability state (see serve/observe.h). */
    RequestMetrics request_metrics_;
    AccessLog access_log_;
    std::unique_ptr<SloController> slo_;
    ServeRuntime runtime_;
    ObserveConfig observe_config_;
    /** The context workers execute requests against. */
    ServeContext exec_ctx_;

    int listen_fd_ = -1;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    uint16_t bound_port_ = 0;

    std::thread loop_thread_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::atomic<bool> workers_running_{false};
    /** Cancels blocking drain-cmd waits on hard-kill. */
    std::atomic<bool> drain_cancel_{false};

    /** Loop-thread-owned connection table and accounting. */
    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    std::unordered_map<std::string, int> conns_per_ip_;
    uint64_t next_conn_id_ = 2; // 0 = listener, 1 = wake fd
    size_t pending_requests_ = 0;

    /** Worker -> loop completion handoff. */
    std::mutex completions_mu_;
    std::vector<Completion> completions_;

    std::atomic<bool> drain_requested_{false};
    bool drain_active_ = false;
    /** Last store state seen by tick(), for transition events. */
    StoreState last_store_state_ = StoreState::kHealthy;
    std::chrono::steady_clock::time_point drain_deadline_{};
    bool loop_running_ = false;
    bool graceful_exit_ = true;
    std::atomic<bool> exited_{false};

    /** Counters (relaxed atomics; snapshot via stats()). */
    std::atomic<int64_t> accepted_conns_{0};
    std::atomic<int64_t> closed_conns_{0};
    std::atomic<int64_t> rejected_conn_limit_{0};
    std::atomic<int64_t> rejected_ip_limit_{0};
    std::atomic<int64_t> requests_{0};
    /** Lookups executed (the SLO error-rate denominator). */
    std::atomic<int64_t> lookup_requests_{0};
    std::atomic<int64_t> responses_{0};
    std::atomic<int64_t> shed_overloaded_{0};
    std::atomic<int64_t> deadline_exceeded_{0};
    std::atomic<int64_t> oversized_lines_{0};
    std::atomic<int64_t> parse_errors_{0};
    std::atomic<int64_t> idle_disconnects_{0};
    std::atomic<int64_t> overflow_disconnects_{0};
    std::atomic<int64_t> drains_{0};
    std::atomic<int64_t> hard_kills_{0};

    void loop();
    void worker_loop(Worker &worker);

    void accept_ready();
    void conn_readable(Conn &conn);
    void conn_writable(Conn &conn);
    /** Handle one complete request line from @p conn. */
    void on_line(Conn &conn, const std::string &line, bool overflow,
                 bool *kill_conn);
    /**
     * Admission control: "" admits the request, otherwise the shed
     * reason ("hard_watermark", "queue_saturated", "slo_shrunk").
     */
    const char *shed_reason(bool is_lookup) const;
    /** Record a finished/shed request everywhere it should land. */
    void observe(RequestObservation &obs,
                 std::chrono::steady_clock::time_point now);
    /** Stamp total/deadline-slack, then observe(). */
    void finish_observation(
        RequestObservation &obs,
        std::chrono::steady_clock::time_point now);
    void process_completions();
    void begin_drain();
    /** Close everything, persist, and stop the loop. */
    void finish_drain(bool graceful);
    void tick(std::chrono::steady_clock::time_point now);
    /** SLO evaluation at eval_interval_s cadence (loop thread). */
    void maybe_evaluate_slo(
        std::chrono::steady_clock::time_point now);

    /** Flush + refresh epoll interest; closes on fatal error. */
    void flush_and_update(Conn &conn);
    /** Close when EOF seen, nothing in flight, nothing queued. */
    void maybe_close_quiesced(Conn &conn);
    void update_interest(Conn &conn);
    void close_conn(Conn &conn);
    Conn *find_conn(uint64_t id);

    int64_t now_ms() const;
};

} // namespace heron::serve

#endif // HERON_SERVE_SERVER_H
