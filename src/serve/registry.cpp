#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "csp/solver.h"
#include "support/fs_util.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/trace.h"

#include <fstream>
#include <sstream>

namespace heron::serve {

const char *
lookup_tier_name(LookupTier tier)
{
    switch (tier) {
      case LookupTier::kExact: return "exact";
      case LookupTier::kNearest: return "nearest";
      case LookupTier::kNegative: return "negative";
      case LookupTier::kMiss: return "miss";
    }
    return "?";
}

KernelRegistry::KernelRegistry(hw::DlaSpec spec,
                               RegistryConfig config)
    : spec_(std::move(spec)), config_(config)
{
    spec_hash_ = spec_.config_hash();
    int shards = std::max(1, config_.shards);
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->current.store(new Map(),
                             std::memory_order_release);
        shards_.push_back(std::move(shard));
    }
}

KernelRegistry::~KernelRegistry()
{
    // No readers may be live at destruction (standard object
    // lifetime rule), so snapshots can be freed unconditionally.
    for (auto &shard : shards_) {
        delete shard->current.load(std::memory_order_acquire);
        for (const Map *old : shard->retired)
            delete old;
    }
}

void
KernelRegistry::publish(Shard &shard, const Map *next)
{
    const Map *old =
        shard.current.exchange(next, std::memory_order_seq_cst);
    shard.retired.push_back(old);
    // Reclamation rule: a retired snapshot is freed only once it is
    // unreachable (the exchange above) AND no hazard slot protects
    // it. Deferred snapshots are retried on the next publish, so
    // the retired list is bounded by the number of concurrently
    // protected pointers.
    auto it = shard.retired.begin();
    while (it != shard.retired.end()) {
        if (!support::HazardDomain::is_protected(*it)) {
            delete *it;
            it = shard.retired.erase(it);
        } else {
            ++it;
        }
    }
}

KernelRegistry::Shard &
KernelRegistry::shard_for(const WorkloadKey &key)
{
    return *shards_[key.hash() % shards_.size()];
}

const KernelRegistry::Shard &
KernelRegistry::shard_for(const WorkloadKey &key) const
{
    return *shards_[key.hash() % shards_.size()];
}

void
KernelRegistry::set_miss_handler(MissHandler handler)
{
    std::lock_guard<std::mutex> lock(miss_handler_mu_);
    miss_handler_ = std::move(handler);
}

bool
KernelRegistry::dispatch_miss(const ops::Workload &workload,
                              const WorkloadKey &key)
{
    MissHandler handler;
    {
        std::lock_guard<std::mutex> lock(miss_handler_mu_);
        handler = miss_handler_;
    }
    return handler ? handler(workload, key) : false;
}

bool
KernelRegistry::negative_saturated(const WorkloadKey &key) const
{
    if (config_.negative_threshold <= 0)
        return false;
    const Shard &shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.neg_mu);
    auto it = shard.negative.find(key);
    return it != shard.negative.end() &&
           it->second >= config_.negative_threshold;
}

void
KernelRegistry::note_miss(const WorkloadKey &key)
{
    if (config_.negative_threshold <= 0)
        return;
    Shard &shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.neg_mu);
    int &count = shard.negative[key];
    if (count < config_.negative_threshold)
        ++count;
}

void
KernelRegistry::clear_negative(const WorkloadKey &key)
{
    Shard &shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.neg_mu);
    shard.negative.erase(key);
}

void
KernelRegistry::mark_untunable(const WorkloadKey &key)
{
    if (config_.negative_threshold <= 0)
        return;
    Shard &shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.neg_mu);
    shard.negative[key] = config_.negative_threshold;
}

std::shared_ptr<const rules::GeneratedSpace>
KernelRegistry::space_for(const ops::Workload &workload,
                          const WorkloadKey &key)
{
    // Memoized in the striped SpaceCache by the canonical key hash;
    // generation runs outside the stripe lock (see SpaceCache).
    return spaces_.get_or_generate(key.hash(), [&] {
        HERON_TRACE_SCOPE("serve/generate_space");
        rules::SpaceGenerator generator(spec_,
                                        config_.space_options);
        return generator.generate(workload);
    });
}

std::optional<csp::Assignment>
KernelRegistry::transfer_assignment(
    const rules::GeneratedSpace &space,
    const rules::GeneratedSpace &donor_space, const WorkloadKey &key,
    const WorkloadKey &donor_key, const csp::Assignment &donor,
    double budget_ms) const
{
    // The stored assignment must describe the donor's own space
    // (generator options may have changed since it was recorded).
    if (donor.size() != donor_space.csp.num_vars())
        return std::nullopt;
    HERON_TRACE_SCOPE("serve/transfer");

    // Pin every query tunable to the donor's value for the
    // *same-named* variable. Ids do not line up across shapes (the
    // template is shape-dependent), but rule-generated names are
    // stable. Architecture variables are left free: they encode the
    // query's actual extents and must be re-derived by propagation,
    // not copied from the donor's shape. Genes absent from the
    // donor or outside the query var's initial domain are skipped.
    std::vector<csp::Constraint> pins;
    for (csp::VarId v : space.csp.tunable_vars()) {
        csp::VarId dv =
            donor_space.csp.find_var(space.csp.var(v).name);
        if (dv < 0)
            continue;
        int64_t value = donor[static_cast<size_t>(dv)];
        if (!space.csp.var(v).initial.contains(value))
            continue;
        csp::Constraint c;
        c.kind = csp::ConstraintKind::kIn;
        c.result = v;
        c.constants = {value};
        c.note = "serve:transfer";
        pins.push_back(std::move(c));
    }
    if (pins.empty())
        return std::nullopt;

    csp::SolverConfig solver_config;
    solver_config.deadline_ms =
        static_cast<double>(config_.transfer_deadline_ms);
    // Deadline propagation: never spend more solver time than the
    // caller has left.
    if (budget_ms > 0.0)
        solver_config.deadline_ms =
            std::min(solver_config.deadline_ms, budget_ms);
    csp::RandSatSolver solver(space.csp, solver_config);
    // Deterministic per (query, donor) pair so a repeated lookup
    // serves the same transplanted schedule.
    Rng rng(hash_combine(key.hash(), donor_key.hash()));

    // Relaxation ladder (the CGA crossover shape): pinning every
    // transferable gene may be UNSAT under the query's extents, so
    // drop pins one at a time — but keep at least half, or the
    // "transfer" degenerates into an unrelated random schedule.
    const size_t min_pins = (pins.size() + 1) / 2;
    while (true) {
        if (auto solved = solver.solve_one(rng, pins))
            return solved;
        if (pins.size() <= min_pins)
            return std::nullopt;
        pins.erase(pins.begin() +
                   static_cast<long>(rng.index(pins.size())));
    }
}

namespace {

/** Remaining ms until @p options's deadline (<= 0 = expired). */
double
remaining_ms(const LookupOptions &options)
{
    if (!options.deadline)
        return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(
               *options.deadline -
               std::chrono::steady_clock::now())
        .count();
}

} // namespace

std::optional<LookupResult>
KernelRegistry::try_fallback(const ops::Workload &workload,
                             const WorkloadKey &key,
                             const LookupOptions &options,
                             bool *deadline_expired)
{
    HERON_TRACE_SCOPE("serve/fallback");

    // Collect compatible donors from each shard's snapshot (one
    // hazard guard, re-targeted per shard), then rank and
    // re-validate with no protection held: candidates are copied
    // out, and try_bind walks the whole template so it must not
    // pin a snapshot.
    struct Candidate {
        double distance;
        Entry entry;
    };
    std::vector<Candidate> candidates;
    {
        support::HazardDomain::Guard guard;
        for (const auto &shard : shards_) {
            const Map *map = guard.protect(shard->current);
            for (const auto &[donor_key, entry] : *map) {
                double distance = shape_distance(key, donor_key);
                if (distance <= config_.max_fallback_distance)
                    candidates.push_back({distance, entry});
            }
        }
    }
    if (candidates.empty())
        return std::nullopt;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.distance != b.distance)
                      return a.distance < b.distance;
                  // Equidistant donors tie-break on throughput,
                  // then canonical key, so lookups are
                  // deterministic across shard iteration orders.
                  if (a.entry.record.gflops != b.entry.record.gflops)
                      return a.entry.record.gflops >
                             b.entry.record.gflops;
                  return a.entry.key.canonical() <
                         b.entry.key.canonical();
              });
    if (candidates.size() >
        static_cast<size_t>(
            std::max(1, config_.max_fallback_candidates)))
        candidates.resize(static_cast<size_t>(
            std::max(1, config_.max_fallback_candidates)));

    auto space = space_for(workload, key);
    for (const auto &candidate : candidates) {
        // Deadline propagation: each donor costs a try_bind walk
        // and possibly a solver call; stop scanning the moment the
        // budget is gone rather than overshooting per donor.
        double budget = remaining_ms(options);
        if (budget <= 0.0) {
            *deadline_expired = true;
            HERON_COUNTER_INC("serve.fallback.deadline_expired");
            return std::nullopt;
        }
        std::string error;
        auto program =
            space->try_bind(candidate.entry.record.assignment,
                            &error);
        csp::Assignment serve_assignment;
        bool transferred = false;
        if (program) {
            serve_assignment = candidate.entry.record.assignment;
        } else if (config_.enable_transfer) {
            // A raw assignment rarely survives a shape change (the
            // architecture variables pin the donor's extents), so
            // transplant the donor's tunable genes and let the
            // solver complete them for this shape. The completion
            // must still pass try_bind: the nearest tier never
            // serves an assignment on faith.
            const WorkloadKey &donor_key = candidate.entry.key;
            ops::Workload donor_workload{donor_key.kind,
                                         donor_key.canonical(),
                                         donor_key.params,
                                         donor_key.dtype};
            auto donor_space =
                space_for(donor_workload, donor_key);
            auto completed = transfer_assignment(
                *space, *donor_space, key, donor_key,
                candidate.entry.record.assignment,
                std::isfinite(budget) ? budget : 0.0);
            if (completed && space->try_bind(*completed, &error)) {
                serve_assignment = std::move(*completed);
                transferred = true;
            }
        }
        if (serve_assignment.empty()) {
            fallback_rejected_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.fallback.rejected_bind");
            continue;
        }
        if (transferred) {
            fallback_transferred_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.fallback.transferred");
        }
        LookupResult result;
        result.tier = LookupTier::kNearest;
        result.key = key;
        result.record = candidate.entry.record;
        // The donor's measured latency/GFLOP/s stay on the record
        // as the best available estimate; the assignment is the one
        // that actually binds for the query shape.
        result.record->assignment = std::move(serve_assignment);
        result.served_from = candidate.entry.key.canonical();
        result.distance = candidate.distance;
        return result;
    }
    return std::nullopt;
}

LookupResult
KernelRegistry::lookup(const ops::Workload &workload,
                       const LookupOptions &options)
{
#if !defined(HERON_DISABLE_TRACING)
    // The exact-hit path stays on the order of a hash probe, so the
    // latency histogram spends only two clock reads.
    auto start = std::chrono::steady_clock::now();
    auto observe = [&] {
        double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        HERON_HISTOGRAM_OBSERVE("serve.lookup.latency_us", us);
    };
#else
    auto observe = [] {};
#endif
    HERON_TRACE_SCOPE("serve/lookup");
    WorkloadKey key = make_key(workload, spec_);

    {
        // Lock-free exact probe: protect the shard's snapshot, hash
        // into it, copy the record out, drop protection. put() can
        // swap in a new snapshot concurrently; this probe just
        // answers from the one it pinned.
        const Shard &shard = shard_for(key);
        support::HazardDomain::Guard guard;
        const Map *map = guard.protect(shard.current);
        auto it = map->find(key);
        if (it != map->end()) {
            LookupResult result;
            result.tier = LookupTier::kExact;
            result.record = it->second.record;
            guard.clear();
            result.key = std::move(key);
            exact_hits_.fetch_add(1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.lookup.exact");
            observe();
            return result;
        }
    }

    LookupResult result = lookup_slow(workload, std::move(key),
                                      options);
    observe();
    return result;
}

LookupResult
KernelRegistry::lookup_slow(const ops::Workload &workload,
                            WorkloadKey key,
                            const LookupOptions &options)
{
    // Saturated negative cache: this workload has missed (or failed
    // to tune) repeatedly — answer immediately without paying the
    // fallback scan or re-enqueueing.
    if (negative_saturated(key)) {
        negative_hits_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.lookup.negative");
        LookupResult result;
        result.tier = LookupTier::kNegative;
        result.key = std::move(key);
        return result;
    }

    bool deadline_expired = remaining_ms(options) <= 0.0;
    if (config_.enable_fallback && !deadline_expired) {
        if (auto fallback = try_fallback(workload, key, options,
                                         &deadline_expired)) {
            nearest_hits_.fetch_add(1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.lookup.nearest");
            // A fallback answer is approximate; keep the background
            // tuner converging this shape to an exact record.
            if (options.dispatch_miss)
                fallback->enqueued = dispatch_miss(workload, key);
            return *fallback;
        }
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.lookup.miss");
    // A deadline-shortened miss says nothing about servability:
    // don't let it push the key toward negative-cache saturation,
    // but do keep feeding the background tuner.
    if (!deadline_expired)
        note_miss(key);
    else
        HERON_COUNTER_INC("serve.lookup.deadline_expired");
    LookupResult result;
    result.tier = LookupTier::kMiss;
    result.deadline_expired = deadline_expired;
    if (options.dispatch_miss)
        result.enqueued = dispatch_miss(workload, key);
    result.key = std::move(key);
    return result;
}

std::vector<LookupResult>
KernelRegistry::lookup_batch(
    const std::vector<ops::Workload> &workloads,
    const LookupOptions &options)
{
    HERON_TRACE_SCOPE("serve/lookup_batch");
    auto start = std::chrono::steady_clock::now();
    std::vector<LookupResult> results(workloads.size());
    if (workloads.empty())
        return results;
    HERON_COUNTER_INC("serve.lookup.batched");
    HERON_COUNTER_ADD("serve.lookup.batched_keys",
                      static_cast<int64_t>(workloads.size()));

    // Group queries per shard so each touched shard's snapshot is
    // protected exactly once, the read-side mirror of load_records'
    // one-publish-per-shard write batching. Grouping is S scans
    // over a precomputed shard-id array rather than per-shard index
    // buckets: for serving-sized batches the bucket allocations
    // cost more than the probes they would save, and a batch must
    // never lose to the sequential loop it replaces.
    std::vector<WorkloadKey> keys;
    keys.reserve(workloads.size());
    std::vector<uint32_t> shard_of(workloads.size());
    for (size_t i = 0; i < workloads.size(); ++i) {
        keys.push_back(make_key(workloads[i], spec_));
        shard_of[i] = static_cast<uint32_t>(keys[i].hash() %
                                            shards_.size());
    }

    std::vector<bool> resolved(workloads.size(), false);
    size_t remaining = workloads.size();
    int64_t exact = 0;
    {
        support::HazardDomain::Guard guard;
        for (size_t s = 0; s < shards_.size() && remaining > 0;
             ++s) {
            const Map *map = nullptr;
            for (size_t i = 0; i < workloads.size(); ++i) {
                if (shard_of[i] != s)
                    continue;
                if (map == nullptr)
                    map = guard.protect(shards_[s]->current);
                auto it = map->find(keys[i]);
                if (it == map->end())
                    continue;
                LookupResult &result = results[i];
                result.tier = LookupTier::kExact;
                result.record = it->second.record;
                result.key = std::move(keys[i]);
                resolved[i] = true;
                --remaining;
                ++exact;
            }
        }
    }
    if (exact > 0) {
        exact_hits_.fetch_add(exact, std::memory_order_relaxed);
        HERON_COUNTER_ADD("serve.lookup.exact", exact);
    }

    // Leftovers pay the same slow path a single lookup would, so
    // batch and sequential resolution agree tier-for-tier.
    for (size_t i = 0; i < workloads.size(); ++i) {
        if (!resolved[i])
            results[i] = lookup_slow(workloads[i],
                                     std::move(keys[i]), options);
    }
    double batch_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count();
    HERON_HISTOGRAM_OBSERVE("serve.lookup.batch_us", batch_us);
    return results;
}

std::optional<autotune::TuningRecord>
KernelRegistry::peek(const WorkloadKey &key) const
{
    const Shard &shard = shard_for(key);
    support::HazardDomain::Guard guard;
    const Map *map = guard.protect(shard.current);
    auto it = map->find(key);
    if (it == map->end())
        return std::nullopt;
    return it->second.record;
}

bool
KernelRegistry::put(const ops::Workload &workload,
                    autotune::TuningRecord record)
{
    WorkloadKey key = make_key(workload, spec_);
    if (!record.valid || record.assignment.empty()) {
        stale_inserts_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    record.workload = key.canonical();
    record.dla = spec_.name;
    record.category = "serve";

    bool serving = false;
    bool swapped = false;
    {
        // Copy-on-write insert: the published snapshot is immutable,
        // so build the successor under the write lock and swap it
        // in. Readers see either the old or the new snapshot, never
        // an intermediate state.
        Shard &shard = shard_for(key);
        std::lock_guard<std::mutex> lock(shard.write_mu);
        const Map *cur =
            shard.current.load(std::memory_order_acquire);
        auto it = cur->find(key);
        if (it == cur->end()) {
            serving = true;
        } else if (record.gflops > it->second.record.gflops) {
            serving = true;
            swapped = true;
        }
        if (serving) {
            auto *next = new Map(*cur);
            (*next)[key] = Entry{key, std::move(record)};
            publish(shard, next);
        }
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.registry.inserts");
    if (swapped) {
        hot_swaps_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.registry.hot_swaps");
    }
    if (!serving)
        stale_inserts_.fetch_add(1, std::memory_order_relaxed);
    // Even a stale insert proves the workload tunes; stop treating
    // it as a repeated miss.
    clear_negative(key);
    return serving;
}

size_t
KernelRegistry::size() const
{
    size_t total = 0;
    support::HazardDomain::Guard guard;
    for (const auto &shard : shards_)
        total += guard.protect(shard->current)->size();
    return total;
}

RegistryStats
KernelRegistry::stats() const
{
    RegistryStats stats;
    stats.exact_hits = exact_hits_.load(std::memory_order_relaxed);
    stats.nearest_hits =
        nearest_hits_.load(std::memory_order_relaxed);
    stats.negative_hits =
        negative_hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.fallback_rejected =
        fallback_rejected_.load(std::memory_order_relaxed);
    stats.fallback_transferred =
        fallback_transferred_.load(std::memory_order_relaxed);
    stats.inserts = inserts_.load(std::memory_order_relaxed);
    stats.hot_swaps = hot_swaps_.load(std::memory_order_relaxed);
    stats.stale_inserts =
        stale_inserts_.load(std::memory_order_relaxed);
    return stats;
}

int64_t
KernelRegistry::load_store(const std::string &text,
                           StoreLoadStats *stats)
{
    StoreLoadStats local;
    auto records = autotune::read_records(text, &local.read);
    int64_t loaded = load_records(std::move(records), &local);
    if (stats)
        *stats = local;
    return loaded;
}

int64_t
KernelRegistry::load_records(
    std::vector<autotune::TuningRecord> records,
    StoreLoadStats *stats)
{
    StoreLoadStats local;
    if (stats)
        local.read = stats->read;
    // Screen and group records by shard first: COW makes a per-
    // record insert O(shard size), so a bulk load does one
    // copy+publish per touched shard instead of one per record.
    struct Pending {
        WorkloadKey key;
        autotune::TuningRecord record;
    };
    std::vector<std::vector<Pending>> by_shard(shards_.size());
    for (auto &record : records) {
        auto key = parse_canonical(record.workload);
        if (!key) {
            ++local.unparsable;
            continue;
        }
        if (key->dla_hash != spec_hash_) {
            ++local.foreign_dla;
            continue;
        }
        if (!record.valid || record.assignment.empty()) {
            ++local.invalid;
            continue;
        }
        size_t s = key->hash() % shards_.size();
        by_shard[s].push_back({std::move(*key), std::move(record)});
    }
    for (size_t s = 0; s < by_shard.size(); ++s) {
        if (by_shard[s].empty())
            continue;
        Shard &shard = *shards_[s];
        std::lock_guard<std::mutex> lock(shard.write_mu);
        auto *next = new Map(
            *shard.current.load(std::memory_order_acquire));
        for (auto &pending : by_shard[s]) {
            auto it = next->find(pending.key);
            if (it == next->end()) {
                next->emplace(pending.key,
                              Entry{pending.key,
                                    std::move(pending.record)});
                ++local.loaded;
            } else if (pending.record.gflops >
                       it->second.record.gflops) {
                it->second.record = std::move(pending.record);
                ++local.loaded;
            }
        }
        publish(shard, next);
    }
    if (local.unparsable > 0) {
        HERON_WARN << "serving store: skipped " << local.unparsable
                   << " record(s) without a canonical signature";
    }
    if (local.foreign_dla > 0) {
        HERON_WARN << "serving store: skipped " << local.foreign_dla
                   << " record(s) tuned for a different DLA config";
    }
    if (stats)
        *stats = local;
    return local.loaded;
}

int64_t
KernelRegistry::load_store_file(const std::string &path,
                                StoreLoadStats *stats)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (stats)
            *stats = {};
        return 0;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return load_store(text.str(), stats);
}

bool
KernelRegistry::save_store_file(const std::string &path) const
{
    std::vector<autotune::TuningRecord> records;
    {
        support::HazardDomain::Guard guard;
        for (const auto &shard : shards_) {
            const Map *map = guard.protect(shard->current);
            for (const auto &[key, entry] : *map)
                records.push_back(entry.record);
        }
    }
    std::sort(records.begin(), records.end(),
              [](const autotune::TuningRecord &a,
                 const autotune::TuningRecord &b) {
                  return a.workload < b.workload;
              });
    // Re-stamp sequence numbers in sorted order so the store never
    // trips read_records' regression detector.
    for (size_t i = 0; i < records.size(); ++i)
        records[i].seq = static_cast<int64_t>(i) + 1;
    return atomic_write_file(path,
                             autotune::write_records(records));
}

} // namespace heron::serve
