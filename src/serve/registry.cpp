#include "serve/registry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "csp/solver.h"
#include "support/fs_util.h"
#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/trace.h"

#include <fstream>
#include <sstream>

namespace heron::serve {

const char *
lookup_tier_name(LookupTier tier)
{
    switch (tier) {
      case LookupTier::kExact: return "exact";
      case LookupTier::kNearest: return "nearest";
      case LookupTier::kNegative: return "negative";
      case LookupTier::kMiss: return "miss";
    }
    return "?";
}

KernelRegistry::KernelRegistry(hw::DlaSpec spec,
                               RegistryConfig config)
    : spec_(std::move(spec)), config_(config)
{
    spec_hash_ = spec_.config_hash();
    int shards = std::max(1, config_.shards);
    shards_.reserve(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

KernelRegistry::Shard &
KernelRegistry::shard_for(const WorkloadKey &key)
{
    return *shards_[key.hash() % shards_.size()];
}

const KernelRegistry::Shard &
KernelRegistry::shard_for(const WorkloadKey &key) const
{
    return *shards_[key.hash() % shards_.size()];
}

void
KernelRegistry::set_miss_handler(MissHandler handler)
{
    std::lock_guard<std::mutex> lock(miss_handler_mu_);
    miss_handler_ = std::move(handler);
}

bool
KernelRegistry::dispatch_miss(const ops::Workload &workload,
                              const WorkloadKey &key)
{
    MissHandler handler;
    {
        std::lock_guard<std::mutex> lock(miss_handler_mu_);
        handler = miss_handler_;
    }
    return handler ? handler(workload, key) : false;
}

bool
KernelRegistry::negative_saturated(const WorkloadKey &key) const
{
    if (config_.negative_threshold <= 0)
        return false;
    std::lock_guard<std::mutex> lock(negative_mu_);
    auto it = negative_.find(key);
    return it != negative_.end() &&
           it->second >= config_.negative_threshold;
}

void
KernelRegistry::note_miss(const WorkloadKey &key)
{
    if (config_.negative_threshold <= 0)
        return;
    std::lock_guard<std::mutex> lock(negative_mu_);
    int &count = negative_[key];
    if (count < config_.negative_threshold)
        ++count;
}

void
KernelRegistry::clear_negative(const WorkloadKey &key)
{
    std::lock_guard<std::mutex> lock(negative_mu_);
    negative_.erase(key);
}

void
KernelRegistry::mark_untunable(const WorkloadKey &key)
{
    if (config_.negative_threshold <= 0)
        return;
    std::lock_guard<std::mutex> lock(negative_mu_);
    negative_[key] = config_.negative_threshold;
}

std::shared_ptr<const rules::GeneratedSpace>
KernelRegistry::space_for(const ops::Workload &workload,
                          const WorkloadKey &key)
{
    {
        std::lock_guard<std::mutex> lock(spaces_mu_);
        auto it = spaces_.find(key);
        if (it != spaces_.end())
            return it->second;
    }
    // Generate outside the lock: generation is milliseconds and
    // must not stall other queries' cache hits. On a race the first
    // insert wins and the duplicate work is discarded.
    HERON_TRACE_SCOPE("serve/generate_space");
    rules::SpaceGenerator generator(spec_, config_.space_options);
    auto space = std::make_shared<const rules::GeneratedSpace>(
        generator.generate(workload));
    std::lock_guard<std::mutex> lock(spaces_mu_);
    return spaces_.emplace(key, std::move(space)).first->second;
}

std::optional<csp::Assignment>
KernelRegistry::transfer_assignment(
    const rules::GeneratedSpace &space,
    const rules::GeneratedSpace &donor_space, const WorkloadKey &key,
    const WorkloadKey &donor_key, const csp::Assignment &donor,
    double budget_ms) const
{
    // The stored assignment must describe the donor's own space
    // (generator options may have changed since it was recorded).
    if (donor.size() != donor_space.csp.num_vars())
        return std::nullopt;
    HERON_TRACE_SCOPE("serve/transfer");

    // Pin every query tunable to the donor's value for the
    // *same-named* variable. Ids do not line up across shapes (the
    // template is shape-dependent), but rule-generated names are
    // stable. Architecture variables are left free: they encode the
    // query's actual extents and must be re-derived by propagation,
    // not copied from the donor's shape. Genes absent from the
    // donor or outside the query var's initial domain are skipped.
    std::vector<csp::Constraint> pins;
    for (csp::VarId v : space.csp.tunable_vars()) {
        csp::VarId dv =
            donor_space.csp.find_var(space.csp.var(v).name);
        if (dv < 0)
            continue;
        int64_t value = donor[static_cast<size_t>(dv)];
        if (!space.csp.var(v).initial.contains(value))
            continue;
        csp::Constraint c;
        c.kind = csp::ConstraintKind::kIn;
        c.result = v;
        c.constants = {value};
        c.note = "serve:transfer";
        pins.push_back(std::move(c));
    }
    if (pins.empty())
        return std::nullopt;

    csp::SolverConfig solver_config;
    solver_config.deadline_ms =
        static_cast<double>(config_.transfer_deadline_ms);
    // Deadline propagation: never spend more solver time than the
    // caller has left.
    if (budget_ms > 0.0)
        solver_config.deadline_ms =
            std::min(solver_config.deadline_ms, budget_ms);
    csp::RandSatSolver solver(space.csp, solver_config);
    // Deterministic per (query, donor) pair so a repeated lookup
    // serves the same transplanted schedule.
    Rng rng(hash_combine(key.hash(), donor_key.hash()));

    // Relaxation ladder (the CGA crossover shape): pinning every
    // transferable gene may be UNSAT under the query's extents, so
    // drop pins one at a time — but keep at least half, or the
    // "transfer" degenerates into an unrelated random schedule.
    const size_t min_pins = (pins.size() + 1) / 2;
    while (true) {
        if (auto solved = solver.solve_one(rng, pins))
            return solved;
        if (pins.size() <= min_pins)
            return std::nullopt;
        pins.erase(pins.begin() +
                   static_cast<long>(rng.index(pins.size())));
    }
}

namespace {

/** Remaining ms until @p options's deadline (<= 0 = expired). */
double
remaining_ms(const LookupOptions &options)
{
    if (!options.deadline)
        return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(
               *options.deadline -
               std::chrono::steady_clock::now())
        .count();
}

} // namespace

std::optional<LookupResult>
KernelRegistry::try_fallback(const ops::Workload &workload,
                             const WorkloadKey &key,
                             const LookupOptions &options,
                             bool *deadline_expired)
{
    HERON_TRACE_SCOPE("serve/fallback");

    // Collect compatible donors under shared locks, then rank and
    // re-validate with every lock released: try_bind walks the
    // whole template and must not hold up writers.
    struct Candidate {
        double distance;
        Entry entry;
    };
    std::vector<Candidate> candidates;
    for (const auto &shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mu);
        for (const auto &[donor_key, entry] : shard->map) {
            double distance = shape_distance(key, donor_key);
            if (distance <= config_.max_fallback_distance)
                candidates.push_back({distance, entry});
        }
    }
    if (candidates.empty())
        return std::nullopt;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.distance != b.distance)
                      return a.distance < b.distance;
                  // Equidistant donors tie-break on throughput,
                  // then canonical key, so lookups are
                  // deterministic across shard iteration orders.
                  if (a.entry.record.gflops != b.entry.record.gflops)
                      return a.entry.record.gflops >
                             b.entry.record.gflops;
                  return a.entry.key.canonical() <
                         b.entry.key.canonical();
              });
    if (candidates.size() >
        static_cast<size_t>(
            std::max(1, config_.max_fallback_candidates)))
        candidates.resize(static_cast<size_t>(
            std::max(1, config_.max_fallback_candidates)));

    auto space = space_for(workload, key);
    for (const auto &candidate : candidates) {
        // Deadline propagation: each donor costs a try_bind walk
        // and possibly a solver call; stop scanning the moment the
        // budget is gone rather than overshooting per donor.
        double budget = remaining_ms(options);
        if (budget <= 0.0) {
            *deadline_expired = true;
            HERON_COUNTER_INC("serve.fallback.deadline_expired");
            return std::nullopt;
        }
        std::string error;
        auto program =
            space->try_bind(candidate.entry.record.assignment,
                            &error);
        csp::Assignment serve_assignment;
        bool transferred = false;
        if (program) {
            serve_assignment = candidate.entry.record.assignment;
        } else if (config_.enable_transfer) {
            // A raw assignment rarely survives a shape change (the
            // architecture variables pin the donor's extents), so
            // transplant the donor's tunable genes and let the
            // solver complete them for this shape. The completion
            // must still pass try_bind: the nearest tier never
            // serves an assignment on faith.
            const WorkloadKey &donor_key = candidate.entry.key;
            ops::Workload donor_workload{donor_key.kind,
                                         donor_key.canonical(),
                                         donor_key.params,
                                         donor_key.dtype};
            auto donor_space =
                space_for(donor_workload, donor_key);
            auto completed = transfer_assignment(
                *space, *donor_space, key, donor_key,
                candidate.entry.record.assignment,
                std::isfinite(budget) ? budget : 0.0);
            if (completed && space->try_bind(*completed, &error)) {
                serve_assignment = std::move(*completed);
                transferred = true;
            }
        }
        if (serve_assignment.empty()) {
            fallback_rejected_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.fallback.rejected_bind");
            continue;
        }
        if (transferred) {
            fallback_transferred_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.fallback.transferred");
        }
        LookupResult result;
        result.tier = LookupTier::kNearest;
        result.key = key;
        result.record = candidate.entry.record;
        // The donor's measured latency/GFLOP/s stay on the record
        // as the best available estimate; the assignment is the one
        // that actually binds for the query shape.
        result.record->assignment = std::move(serve_assignment);
        result.served_from = candidate.entry.key.canonical();
        result.distance = candidate.distance;
        return result;
    }
    return std::nullopt;
}

LookupResult
KernelRegistry::lookup(const ops::Workload &workload,
                       const LookupOptions &options)
{
#if !defined(HERON_DISABLE_TRACING)
    // The exact-hit path stays on the order of a hash probe, so the
    // latency histogram spends only two clock reads.
    auto start = std::chrono::steady_clock::now();
    auto observe = [&] {
        double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        HERON_HISTOGRAM_OBSERVE("serve.lookup.latency_us", us);
    };
#else
    auto observe = [] {};
#endif
    HERON_TRACE_SCOPE("serve/lookup");
    WorkloadKey key = make_key(workload, spec_);

    {
        const Shard &shard = shard_for(key);
        std::shared_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            LookupResult result;
            result.tier = LookupTier::kExact;
            result.key = std::move(key);
            result.record = it->second.record;
            lock.unlock();
            exact_hits_.fetch_add(1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.lookup.exact");
            observe();
            return result;
        }
    }

    // Saturated negative cache: this workload has missed (or failed
    // to tune) repeatedly — answer immediately without paying the
    // fallback scan or re-enqueueing.
    if (negative_saturated(key)) {
        negative_hits_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.lookup.negative");
        LookupResult result;
        result.tier = LookupTier::kNegative;
        result.key = std::move(key);
        observe();
        return result;
    }

    bool deadline_expired = remaining_ms(options) <= 0.0;
    if (config_.enable_fallback && !deadline_expired) {
        if (auto fallback = try_fallback(workload, key, options,
                                         &deadline_expired)) {
            nearest_hits_.fetch_add(1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.lookup.nearest");
            // A fallback answer is approximate; keep the background
            // tuner converging this shape to an exact record.
            fallback->enqueued = dispatch_miss(workload, key);
            observe();
            return *fallback;
        }
    }

    misses_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.lookup.miss");
    // A deadline-shortened miss says nothing about servability:
    // don't let it push the key toward negative-cache saturation,
    // but do keep feeding the background tuner.
    if (!deadline_expired)
        note_miss(key);
    else
        HERON_COUNTER_INC("serve.lookup.deadline_expired");
    LookupResult result;
    result.tier = LookupTier::kMiss;
    result.deadline_expired = deadline_expired;
    result.enqueued = dispatch_miss(workload, key);
    result.key = std::move(key);
    observe();
    return result;
}

bool
KernelRegistry::put(const ops::Workload &workload,
                    autotune::TuningRecord record)
{
    WorkloadKey key = make_key(workload, spec_);
    if (!record.valid || record.assignment.empty()) {
        stale_inserts_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    record.workload = key.canonical();
    record.dla = spec_.name;
    record.category = "serve";

    bool serving = false;
    bool swapped = false;
    {
        Shard &shard = shard_for(key);
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            shard.map.emplace(key, Entry{key, std::move(record)});
            serving = true;
        } else if (record.gflops > it->second.record.gflops) {
            it->second.record = std::move(record);
            serving = true;
            swapped = true;
        }
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.registry.inserts");
    if (swapped) {
        hot_swaps_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.registry.hot_swaps");
    }
    if (!serving)
        stale_inserts_.fetch_add(1, std::memory_order_relaxed);
    // Even a stale insert proves the workload tunes; stop treating
    // it as a repeated miss.
    clear_negative(key);
    return serving;
}

size_t
KernelRegistry::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mu);
        total += shard->map.size();
    }
    return total;
}

RegistryStats
KernelRegistry::stats() const
{
    RegistryStats stats;
    stats.exact_hits = exact_hits_.load(std::memory_order_relaxed);
    stats.nearest_hits =
        nearest_hits_.load(std::memory_order_relaxed);
    stats.negative_hits =
        negative_hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.fallback_rejected =
        fallback_rejected_.load(std::memory_order_relaxed);
    stats.fallback_transferred =
        fallback_transferred_.load(std::memory_order_relaxed);
    stats.inserts = inserts_.load(std::memory_order_relaxed);
    stats.hot_swaps = hot_swaps_.load(std::memory_order_relaxed);
    stats.stale_inserts =
        stale_inserts_.load(std::memory_order_relaxed);
    return stats;
}

int64_t
KernelRegistry::load_store(const std::string &text,
                           StoreLoadStats *stats)
{
    StoreLoadStats local;
    auto records = autotune::read_records(text, &local.read);
    int64_t loaded = load_records(std::move(records), &local);
    if (stats)
        *stats = local;
    return loaded;
}

int64_t
KernelRegistry::load_records(
    std::vector<autotune::TuningRecord> records,
    StoreLoadStats *stats)
{
    StoreLoadStats local;
    if (stats)
        local.read = stats->read;
    for (auto &record : records) {
        auto key = parse_canonical(record.workload);
        if (!key) {
            ++local.unparsable;
            continue;
        }
        if (key->dla_hash != spec_hash_) {
            ++local.foreign_dla;
            continue;
        }
        if (!record.valid || record.assignment.empty()) {
            ++local.invalid;
            continue;
        }
        Shard &shard = shard_for(*key);
        std::unique_lock<std::shared_mutex> lock(shard.mu);
        auto it = shard.map.find(*key);
        if (it == shard.map.end()) {
            shard.map.emplace(*key,
                              Entry{*key, std::move(record)});
            ++local.loaded;
        } else if (record.gflops > it->second.record.gflops) {
            it->second.record = std::move(record);
            ++local.loaded;
        }
    }
    if (local.unparsable > 0) {
        HERON_WARN << "serving store: skipped " << local.unparsable
                   << " record(s) without a canonical signature";
    }
    if (local.foreign_dla > 0) {
        HERON_WARN << "serving store: skipped " << local.foreign_dla
                   << " record(s) tuned for a different DLA config";
    }
    if (stats)
        *stats = local;
    return local.loaded;
}

int64_t
KernelRegistry::load_store_file(const std::string &path,
                                StoreLoadStats *stats)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (stats)
            *stats = {};
        return 0;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return load_store(text.str(), stats);
}

bool
KernelRegistry::save_store_file(const std::string &path) const
{
    std::vector<autotune::TuningRecord> records;
    for (const auto &shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mu);
        for (const auto &[key, entry] : shard->map)
            records.push_back(entry.record);
    }
    std::sort(records.begin(), records.end(),
              [](const autotune::TuningRecord &a,
                 const autotune::TuningRecord &b) {
                  return a.workload < b.workload;
              });
    // Re-stamp sequence numbers in sorted order so the store never
    // trips read_records' regression detector.
    for (size_t i = 0; i < records.size(); ++i)
        records[i].seq = static_cast<int64_t>(i) + 1;
    return atomic_write_file(path,
                             autotune::write_records(records));
}

} // namespace heron::serve
