/**
 * @file
 * TuneQueue: the on-miss background tuner of the serving layer.
 *
 * A bounded FIFO of missed workloads drained by a worker thread
 * that runs the full Heron tuner (autotune::make_heron_tuner, which
 * itself fans measurements across hw::MeasurePool workers) and
 * hot-swaps the winner into the KernelRegistry, so a workload that
 * missed once starts answering exact-hit lookups as soon as its
 * tune completes. Workloads already queued or in flight are
 * deduplicated; a full queue rejects (serving never blocks on
 * tuning); a workload that tunes to nothing is marked untunable so
 * the registry's negative cache stops re-enqueueing it.
 */
#ifndef HERON_SERVE_TUNE_QUEUE_H
#define HERON_SERVE_TUNE_QUEUE_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "autotune/tuner.h"
#include "serve/registry.h"

namespace heron::serve {

class DurableStore;

/** Queue sizing and per-workload tuning budget. */
struct TuneQueueConfig {
    /** Max workloads waiting (in-flight excluded; >= 1). */
    size_t capacity = 64;
    /** Budget for each background tune. */
    autotune::TuneConfig tune;
    /**
     * Persist the registry here after every completed tune ("" =
     * off). Written atomically, so a crash mid-tune loses at most
     * the record being tuned. Legacy whole-file path; prefer
     * @c store.
     */
    std::string store_path;
    /**
     * WAL-backed durable store (preferred over store_path). Each
     * completed tune appends its record *before* publishing to the
     * registry, so an exact-tier answer implies durability. A
     * degraded store pauses intake (enqueue returns kDegraded)
     * while lookups keep serving.
     */
    DurableStore *store = nullptr;
};

/** Why enqueue() accepted or rejected a workload. */
enum class EnqueueOutcome : uint8_t {
    kAccepted = 0,
    /** Already queued or being tuned. */
    kDuplicate,
    /** Queue at capacity. */
    kFull,
    /** Queue not running (before start() / after stop()). */
    kStopped,
    /** Durable store degraded: intake paused, serving read-only. */
    kDegraded,
};

/** Monotonic queue counters. */
struct TuneQueueStats {
    int64_t accepted = 0;
    int64_t deduplicated = 0;
    int64_t rejected_full = 0;
    /** Tunes that produced a record (registry insert attempted). */
    int64_t completed = 0;
    /** Tunes that found no valid program (marked untunable). */
    int64_t failed = 0;
    /** Completed tunes whose record could not be persisted. */
    int64_t persist_failures = 0;
    /** Deferred persists that a later completion flushed. */
    int64_t persist_retries = 0;
    /** Workloads rejected because the store was degraded. */
    int64_t rejected_degraded = 0;
};

/**
 * Point-in-time queue load, for load-shedding decisions and the
 * "stats" protocol response: how full the queue is and whether a
 * tune is executing right now.
 */
struct TuneQueueLoad {
    size_t depth = 0;
    size_t capacity = 0;
    bool in_flight = false;
    /** depth == capacity (enqueue would reject). */
    bool saturated() const { return depth >= capacity; }
};

/** Bounded background tuning worker over one KernelRegistry. */
class TuneQueue
{
  public:
    /** @p registry must outlive the queue. */
    TuneQueue(KernelRegistry &registry, TuneQueueConfig config = {});

    /** Stops and joins the worker. */
    ~TuneQueue();

    TuneQueue(const TuneQueue &) = delete;
    TuneQueue &operator=(const TuneQueue &) = delete;

    /** Spawn the worker thread (idempotent). */
    void start();

    /**
     * Stop accepting work, finish the in-flight tune (if any), and
     * join. Queued-but-unstarted workloads are dropped.
     */
    void stop();

    /** Offer a missed workload (thread-safe, non-blocking). */
    EnqueueOutcome enqueue(const ops::Workload &workload);

    /**
     * Block until the queue is empty and the worker idle. Only for
     * tests and scripted drivers — a serving loop never waits on
     * tuning.
     */
    void drain();

    /** Workloads waiting (in-flight excluded). */
    size_t depth() const;

    /** True while the worker is tuning a workload. */
    bool in_flight() const;

    /** Configured waiting-slot capacity. */
    size_t capacity() const { return config_.capacity; }

    /** Consistent depth/capacity/in-flight snapshot. */
    TuneQueueLoad load() const;

    /** Snapshot of the queue counters. */
    TuneQueueStats stats() const;

  private:
    KernelRegistry &registry_;
    TuneQueueConfig config_;

    mutable std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<ops::Workload> queue_;
    /** Keys queued or in flight (the dedup set). */
    std::unordered_set<WorkloadKey, WorkloadKeyHash> pending_;
    bool running_ = false;
    bool in_flight_ = false;
    /** Legacy whole-file store needs a rewrite after a failure. */
    bool store_dirty_ = false;
    std::thread worker_;
    TuneQueueStats stats_;

    void worker_loop();
    /** Tune one workload and publish the result. */
    void tune_one(const ops::Workload &workload);
};

} // namespace heron::serve

#endif // HERON_SERVE_TUNE_QUEUE_H
