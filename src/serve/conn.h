/**
 * @file
 * Per-connection plumbing for the serving front-end: bounded NDJSON
 * line framing and a backpressured output queue. Both pieces are
 * transport-agnostic plain classes (no sockets), so the slow-client
 * defenses are unit-testable byte-by-byte and shared between the
 * TCP server and heron_serve's --stdio loop.
 *
 * Defenses implemented here:
 *   - LineScanner caps the bytes one request line may buffer. An
 *     oversized line is *streamed to the bit bucket* (never
 *     accumulated) until its terminating newline, then reported
 *     once as an overflow, so a hostile client cannot grow server
 *     memory by withholding '\n'.
 *   - Conn caps the bytes queued toward one client. A client that
 *     stops reading while pipelining requests overflows its output
 *     budget and is disconnected instead of growing the queue.
 */
#ifndef HERON_SERVE_CONN_H
#define HERON_SERVE_CONN_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace heron::serve {

/**
 * Incremental newline-delimited framing over arbitrary byte chunks
 * (torn frames welcome) with a hard per-line size cap.
 */
class LineScanner
{
  public:
    /** @p max_line_bytes excludes the newline (>= 1 enforced). */
    explicit LineScanner(size_t max_line_bytes);

    /**
     * Called once per terminated line: the line's text (without the
     * newline) and whether it overflowed the cap. Overflowed lines
     * arrive with empty text — their bytes were discarded as they
     * streamed.
     */
    using LineHandler =
        std::function<void(const std::string &line, bool overflow)>;

    /** Feed @p n bytes; invokes @p on_line per completed line. */
    void feed(const char *data, size_t n,
              const LineHandler &on_line);

    /** Bytes buffered for the (incomplete) current line. */
    size_t buffered() const { return buffer_.size(); }

    /** True while discarding an oversized line. */
    bool discarding() const { return discarding_; }

  private:
    size_t max_line_bytes_;
    std::string buffer_;
    bool discarding_ = false;
};

/**
 * One client connection's state: identity, line framing, and the
 * bounded output queue. Socket I/O stays in the server event loop;
 * Conn only manages bytes and budgets, which keeps it synchronous
 * and single-owner (the loop thread).
 */
class Conn
{
  public:
    Conn(int fd, uint64_t id, std::string peer_ip,
         size_t max_line_bytes, size_t max_output_bytes);

    int fd() const { return fd_; }
    uint64_t id() const { return id_; }
    const std::string &peer_ip() const { return peer_ip_; }

    LineScanner &scanner() { return scanner_; }

    /**
     * Queue @p line (a newline is appended) for delivery. False
     * when the per-connection output budget would be exceeded — the
     * caller should disconnect; nothing is queued in that case.
     */
    bool queue_line(const std::string &line);

    /**
     * Write as much queued output as the socket accepts (partial
     * writes resume where they left off). Returns false on a fatal
     * write error (the connection should be closed).
     */
    bool flush();

    /** Bytes still queued toward the client. */
    size_t output_bytes() const { return output_bytes_; }

    bool has_output() const { return !output_.empty(); }

    /** Close once the output queue empties (quit / half-close). */
    void set_close_after_flush() { close_after_flush_ = true; }
    bool close_after_flush() const { return close_after_flush_; }

    /** Peer sent EOF; stop expecting new requests. */
    void set_saw_eof() { saw_eof_ = true; }
    bool saw_eof() const { return saw_eof_; }

    /** Requests dispatched to workers, response not yet queued. */
    int in_flight = 0;
    /** Last read/write progress, ms on the server's clock. */
    int64_t last_activity_ms = 0;
    /** Registered epoll interest mask (owned by the event loop). */
    uint32_t interest = 0;

  private:
    int fd_;
    uint64_t id_;
    std::string peer_ip_;
    LineScanner scanner_;
    size_t max_output_bytes_;

    std::deque<std::string> output_;
    /** Total bytes across output_ minus what front_sent_ consumed. */
    size_t output_bytes_ = 0;
    /** Bytes of output_.front() already written. */
    size_t front_sent_ = 0;
    bool close_after_flush_ = false;
    bool saw_eof_ = false;
};

} // namespace heron::serve

#endif // HERON_SERVE_CONN_H
