/**
 * @file
 * GraphService: whole-network serving over the kernel registry.
 *
 * A graph request describes a model as layers-with-counts (the
 * ops::Network shape). The service canonicalizes every layer to a
 * WorkloadKey, merges layers that share a key (summing instance
 * counts — the dedupe step), resolves all distinct keys against the
 * registry in ONE batched pass (KernelRegistry::lookup_batch: one
 * hazard-guard acquisition per touched shard instead of one per
 * layer), hands unresolved layers to the GraphTuneScheduler in
 * payoff order, and compiles the resolved model into a single
 * dispatchable library (LibraryBuilder::emit_network — shared
 * kernels emitted once, one dispatch function keyed on layer
 * index).
 *
 * Each accepted graph is remembered so a follow-up graph_status
 * request reports per-layer tiers and coverage; status polls peek
 * the registry (no counters perturbed) and re-dispatch layers that
 * still miss, so a graph converges to all-exact as background tunes
 * complete.
 */
#ifndef HERON_SERVE_GRAPH_H
#define HERON_SERVE_GRAPH_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "autotune/library.h"
#include "ops/networks.h"
#include "serve/graph_schedule.h"
#include "serve/registry.h"

namespace heron::serve {

/** Graph-serving knobs. */
struct GraphServiceConfig {
    /**
     * Remembered graphs (for graph_status). The oldest graph is
     * evicted once the table is full; its status becomes unknown
     * but its scheduled tunes still run.
     */
    size_t max_graphs = 64;
    /**
     * Directory for emitted dispatch headers ("" = inline-only).
     * Each graph writes <emit_dir>/graph_<id>_<name>.h.
     */
    std::string emit_dir;
};

/** Per-layer state reported by graph and graph_status responses. */
struct GraphLayerStatus {
    ops::Workload workload;
    /** Canonical workload key (the dedupe identity). */
    std::string key;
    int64_t count = 1;
    LookupTier tier = LookupTier::kMiss;
    double distance = 0.0;
    double payoff = 0.0;
    /** This layer sits in the tune plan (still converging). */
    bool scheduled = false;
};

/** Outcome of one graph (or graph_status) request. */
struct GraphResult {
    int64_t id = 0;
    std::string name;
    /** Distinct layers after dedupe. */
    int64_t layers = 0;
    /** Total layer instances before dedupe (Σ count). */
    int64_t instances = 0;
    /** Instances answered by an earlier identical layer. */
    int64_t deduped = 0;
    /** Distinct-layer tier counts from the batched resolution. */
    int64_t exact = 0;
    int64_t nearest = 0;
    int64_t miss = 0;
    /** Layers handed to the tune queue this pass. */
    int64_t scheduled = 0;
    /** Distinct kernels with generated source. */
    int64_t emitted = 0;
    /** Instance-weighted exact coverage in [0, 1]. */
    double coverage = 0.0;
    /** Every layer answers from the exact tier. */
    bool converged = false;
    /** Emitted dispatch-header path ("" when emit_dir unset). */
    std::string library_path;
    /** Inline dispatch header (graph requests with emit=inline). */
    std::string library_header;
    std::vector<GraphLayerStatus> layer_status;
};

/** Monotonic graph-serving counters. */
struct GraphServiceStats {
    int64_t requests = 0;
    int64_t status_requests = 0;
    /** Distinct layers resolved across all graphs. */
    int64_t layers = 0;
    /** Deduped instances across all graphs. */
    int64_t deduped = 0;
    /** Kernels emitted across all graphs. */
    int64_t emitted = 0;
    /** Layers accepted by the tune queue across all graphs. */
    int64_t scheduled = 0;
    /** Graphs currently tracked (gauge, not monotonic). */
    int64_t active = 0;
};

/**
 * Whole-network front-end over one KernelRegistry (see file
 * header). Thread-safe: the graph table is mutex-protected, and
 * registry/scheduler calls use their own synchronization.
 */
class GraphService
{
  public:
    /** @p registry and @p scheduler must outlive the service. */
    GraphService(KernelRegistry &registry,
                 GraphTuneScheduler &scheduler,
                 GraphServiceConfig config = {});

    /**
     * Serve a graph request: dedupe, batch-resolve, schedule
     * misses by payoff, emit the network library. @p options's
     * deadline is propagated into the batched lookup;
     * dispatch_miss is forced off (the scheduler owns tune order).
     * @p inline_header additionally returns the emitted dispatch
     * header in GraphResult::library_header.
     */
    GraphResult handle_graph(const ops::Network &network,
                             const LookupOptions &options = {},
                             bool inline_header = false);

    /**
     * Report (and advance) a tracked graph: re-peek every layer,
     * re-dispatch still-unresolved ones under the current budget,
     * and return updated tiers/coverage. nullopt when @p id is
     * unknown (never accepted, or evicted).
     */
    std::optional<GraphResult> handle_status(int64_t id);

    GraphServiceStats stats() const;

  private:
    struct TrackedGraph {
        int64_t id = 0;
        std::string name;
        int64_t instances = 0;
        int64_t deduped = 0;
        int64_t emitted = 0;
        std::string library_path;
        std::vector<GraphLayer> layers;
        std::vector<bool> scheduled;
        bool closed = false;
    };

    KernelRegistry &registry_;
    GraphTuneScheduler &scheduler_;
    GraphServiceConfig config_;

    mutable std::mutex mu_;
    /** Ordered so eviction drops the oldest id. */
    std::map<int64_t, TrackedGraph> graphs_;
    int64_t next_id_ = 1;

    mutable std::atomic<int64_t> requests_{0};
    mutable std::atomic<int64_t> status_requests_{0};
    mutable std::atomic<int64_t> layers_{0};
    mutable std::atomic<int64_t> deduped_{0};
    mutable std::atomic<int64_t> emitted_{0};

    /** Merge layers sharing a canonical key (dedupe). */
    std::vector<GraphLayer>
    canonicalize(const ops::Network &network,
                 int64_t *instances) const;

    /** Build the response's per-layer status + coverage fields. */
    static void fill_status(const TrackedGraph &graph,
                            const std::vector<ScheduledLayer> &plan,
                            GraphResult *result);

    /** Mark converged graphs closed (scheduler bookkeeping). */
    void maybe_close(TrackedGraph &graph);
};

} // namespace heron::serve

#endif // HERON_SERVE_GRAPH_H
