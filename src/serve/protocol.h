/**
 * @file
 * The newline-delimited JSON request/response protocol heron_serve
 * speaks on stdin/stdout. One request per line, one response line
 * per request, so the server is scriptable from a shell pipeline
 * and deterministic to test.
 *
 * Lookup request:
 *   {"id":1,"op":"gemm","shape":[512,512,512]}
 *   {"id":2,"op":"c2d","shape":[1,16,14,14,16,3,3,1,1],
 *    "dtype":"fp16"}
 *   {"id":3,"op":"gemm","shape":[512,512,512],"deadline_ms":5}
 * "dtype" is optional and defaults by DLA kind (fp16 on TensorCore,
 * int8 elsewhere), matching heron_tune. "shape" uses the same
 * operator-specific parameter lists as heron_tune --shape.
 * "deadline_ms" (optional, relative to request arrival) caps how
 * long the server may spend answering: nearest-tier solver budgets
 * shrink to the remaining time and an expired request answers
 * {"id":...,"error":"deadline_exceeded"} instead of burning solver
 * time (see serve/registry.h LookupOptions).
 *
 * Graph requests (whole-network serving; see serve/graph.h):
 *   {"id":7,"cmd":"graph","network":"resnet50","batch":16}
 *   {"id":7,"cmd":"graph","name":"tiny","layers":[
 *      {"op":"c2d","shape":[16,64,56,56,64,3,3,1,1],"count":3},
 *      {"op":"gemm","shape":[16,1000,2048]}]}
 *   {"id":8,"cmd":"graph_status","graph":1}
 * The named form instantiates a built-in benchmark network
 * (resnet50, inception_v3, vgg16, bert) at the given batch size;
 * the explicit form lists layers with the same op/shape/dtype
 * conventions as a lookup plus an optional per-layer "count".
 * "emit":"inline" on a graph request returns the generated dispatch
 * header in the response ("header") besides writing it to the
 * server's --graph-dir. "deadline_ms" is honored as for lookups
 * (propagated into the batched resolution). The response reports
 * the graph id (for graph_status), dedupe and per-tier counts, the
 * payoff-ordered tune schedule size, and per-layer status; a
 * graph_status poll re-reports those as background tunes land,
 * converging to "converged":true.
 *
 * Control requests:
 *   {"id":9,"cmd":"stats"}     tier counters + registry/queue sizes
 *                              + uptime/pid/build + SLO status
 *   {"id":9,"cmd":"metrics"}   full metrics dump: process-wide
 *                              counters/gauges/histograms plus the
 *                              sliding-window latency quantiles
 *   {"id":9,"cmd":"drain"}     block until the tune queue is idle
 *   {"id":9,"cmd":"save"}      persist the store now
 *   {"id":9,"cmd":"health"}    liveness + durable-store state
 *                              ("ok" or "degraded" with the
 *                              serve.store.* accounting)
 *   {"id":9,"cmd":"quit"}      stop serving this client (EOF does
 *                              the same; in --stdio mode this stops
 *                              the server)
 *   {"id":9,"cmd":"shutdown"}  gracefully drain the whole server
 *
 * Responses always echo "id". Lookup hits carry tier, canonical
 * key, latency/gflops of the served record, and its assignment;
 * nearest-tier hits add the donor signature and shape distance;
 * misses report whether the workload was enqueued for background
 * tuning. Malformed requests get {"id":...,"error":"..."}. An
 * overloaded server sheds load with {"id":...,"error":"overloaded"}
 * (see serve/server.h for the admission-control rules).
 */
#ifndef HERON_SERVE_PROTOCOL_H
#define HERON_SERVE_PROTOCOL_H

#include <optional>
#include <string>

#include "ops/networks.h"
#include "serve/graph.h"
#include "serve/observe.h"
#include "serve/registry.h"
#include "serve/slo.h"
#include "serve/tune_queue.h"

namespace heron::serve {

class DurableStore;

/** One parsed request line. */
struct Request {
    enum class Kind : uint8_t {
        kLookup = 0,
        kGraph,
        kGraphStatus,
        kStats,
        kMetrics,
        kDrain,
        kSave,
        kHealth,
        kQuit,
        kShutdown,
    };
    Kind kind = Kind::kLookup;
    /** Echoed back in the response (0 when absent). */
    int64_t id = 0;
    /** Lookup payload (kLookup only). */
    ops::Workload workload;
    /** Graph payload (kGraph only). */
    ops::Network network;
    /** Target graph id (kGraphStatus only). */
    int64_t graph_id = 0;
    /** Return the emitted dispatch header inline (kGraph only). */
    bool graph_inline = false;
    /**
     * Per-request latency budget in milliseconds, relative to
     * arrival (0 = none). Propagated into the registry lookup.
     */
    double deadline_ms = 0.0;
};

/** Endpoint name for a request kind ("lookup", "stats", ...). */
const char *request_kind_name(Request::Kind kind);

/**
 * Parse one request line against @p spec (which fixes the default
 * dtype and validates shape arity). On failure returns nullopt and
 * fills @p error.
 */
std::optional<Request> parse_request(const std::string &line,
                                     const hw::DlaSpec &spec,
                                     std::string *error);

/**
 * Response line (no trailing newline) for a lookup result. With
 * @p degraded, a miss/nearest response carries "degraded":1 so the
 * client can tell an intake pause from an ordinary full queue.
 */
std::string format_lookup_response(int64_t id,
                                   const LookupResult &result,
                                   bool degraded = false);

/**
 * Response line for a graph (or graph_status) result: graph id,
 * dedupe/tier/schedule accounting, coverage, the emitted library
 * path, and a per-layer status array. GraphResult::library_header,
 * when present, rides along as "header" (newline-escaped so the
 * response stays one NDJSON line).
 */
std::string format_graph_response(int64_t id,
                                  const GraphResult &result);

/**
 * Response line for {"cmd":"stats"}: per-tier counters, registry
 * size/inserts, and queue accounting. With @p runtime, adds
 * uptime_s/pid and the baked-in build identity (compiler, sanitizer
 * preset, git describe); with @p slo, the SLO controller status;
 * with @p store, the durable-store accounting ("store":{...}).
 */
std::string format_stats_response(int64_t id,
                                  const KernelRegistry &registry,
                                  const TuneQueue *queue,
                                  const ServeRuntime *runtime =
                                      nullptr,
                                  const SloStatus *slo = nullptr,
                                  const DurableStore *store =
                                      nullptr,
                                  const GraphServiceStats *graph =
                                      nullptr);

/**
 * Response line for {"cmd":"health"}: "ok" or "degraded" plus the
 * durable-store stats object (null without a store — a store-less
 * server is always "ok").
 */
std::string format_health_response(int64_t id,
                                   const DurableStore *store);

/**
 * Response line for {"cmd":"metrics"}: the process-wide metrics
 * snapshot plus per-window quantiles (p50/p95/p99, count, sum over
 * the window) and the SLO status. All pointers nullable.
 */
std::string format_metrics_response(int64_t id,
                                    const RequestMetrics *windows,
                                    const SloStatus *slo);

/** Response line for an unparsable request. */
std::string format_error_response(int64_t id,
                                  const std::string &error);

/** Generic {"id":N,...} acknowledgement, e.g. "drained":true. */
std::string format_ack_response(int64_t id, const std::string &key,
                                bool value);

} // namespace heron::serve

#endif // HERON_SERVE_PROTOCOL_H
