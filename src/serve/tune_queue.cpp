#include "serve/tune_queue.h"

#include <chrono>

#include "serve/store_wal.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::serve {

TuneQueue::TuneQueue(KernelRegistry &registry,
                     TuneQueueConfig config)
    : registry_(registry), config_(std::move(config))
{
    if (config_.capacity < 1)
        config_.capacity = 1;
}

TuneQueue::~TuneQueue() { stop(); }

void
TuneQueue::start()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (running_)
        return;
    running_ = true;
    worker_ = std::thread([this] { worker_loop(); });
}

void
TuneQueue::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_)
            return;
        running_ = false;
        queue_.clear();
    }
    work_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
}

EnqueueOutcome
TuneQueue::enqueue(const ops::Workload &workload)
{
    WorkloadKey key = make_key(workload, registry_.spec());
    // A degraded store means a completed tune could not be made
    // durable: pause intake (serving stays read-only) instead of
    // accumulating acknowledged-but-volatile results. The tick gives
    // auto-recovery a chance before rejecting.
    if (config_.store != nullptr && !config_.store->healthy()) {
        config_.store->tick(std::chrono::steady_clock::now());
        if (!config_.store->healthy()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.rejected_degraded;
            HERON_COUNTER_INC("serve.queue.rejected_degraded");
            return EnqueueOutcome::kDegraded;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_)
            return EnqueueOutcome::kStopped;
        if (pending_.count(key)) {
            ++stats_.deduplicated;
            HERON_COUNTER_INC("serve.queue.deduplicated");
            return EnqueueOutcome::kDuplicate;
        }
        if (queue_.size() >= config_.capacity) {
            ++stats_.rejected_full;
            HERON_COUNTER_INC("serve.queue.rejected_full");
            return EnqueueOutcome::kFull;
        }
        queue_.push_back(workload);
        pending_.insert(std::move(key));
        ++stats_.accepted;
        HERON_COUNTER_INC("serve.queue.accepted");
        HERON_GAUGE_SET("serve.queue.depth",
                        static_cast<double>(queue_.size()));
    }
    work_cv_.notify_one();
    return EnqueueOutcome::kAccepted;
}

void
TuneQueue::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] {
        return (queue_.empty() && !in_flight_) || !running_;
    });
}

size_t
TuneQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

bool
TuneQueue::in_flight() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
}

TuneQueueLoad
TuneQueue::load() const
{
    TuneQueueLoad load;
    load.capacity = config_.capacity;
    std::lock_guard<std::mutex> lock(mu_);
    load.depth = queue_.size();
    load.in_flight = in_flight_;
    return load;
}

TuneQueueStats
TuneQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
TuneQueue::worker_loop()
{
    for (;;) {
        ops::Workload workload;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [this] {
                return !queue_.empty() || !running_;
            });
            if (!running_)
                return;
            workload = std::move(queue_.front());
            queue_.pop_front();
            in_flight_ = true;
            HERON_GAUGE_SET("serve.queue.depth",
                            static_cast<double>(queue_.size()));
            HERON_GAUGE_SET("serve.queue.in_flight", 1.0);
        }
        tune_one(workload);
        {
            std::lock_guard<std::mutex> lock(mu_);
            in_flight_ = false;
            HERON_GAUGE_SET("serve.queue.in_flight", 0.0);
            pending_.erase(make_key(workload, registry_.spec()));
        }
        idle_cv_.notify_all();
    }
}

void
TuneQueue::tune_one(const ops::Workload &workload)
{
    HERON_TRACE_SCOPE("serve/tune");
    WorkloadKey key = make_key(workload, registry_.spec());
    auto tuner =
        autotune::make_heron_tuner(registry_.spec(), config_.tune);
    if (!tuner->supports(workload)) {
        registry_.mark_untunable(key);
        HERON_COUNTER_INC("serve.queue.untunable");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failed;
        return;
    }
    HERON_INFO << "serve: tuning " << key.canonical() << " ("
               << config_.tune.trials << " trials)";
    auto outcome = tuner->tune(workload);
    if (!outcome.result.found()) {
        HERON_WARN << "serve: background tune of "
                   << key.canonical() << " found no valid program ("
                   << autotune::stop_reason_name(
                          outcome.stop_reason)
                   << ")";
        registry_.mark_untunable(key);
        HERON_COUNTER_INC("serve.queue.untunable");
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.failed;
        return;
    }

    autotune::TuningRecord record;
    record.tuner = tuner->name();
    record.latency_ms = outcome.result.best_latency_ms;
    record.gflops = outcome.result.best_gflops;
    record.assignment = outcome.result.best;
    // Stamp the fields put() would stamp: the WAL append happens
    // *before* the registry publish (write-ahead discipline), so the
    // persisted record must already carry its canonical identity.
    record.workload = key.canonical();
    record.dla = registry_.spec().name;
    record.category = "serve";

    bool persisted = true;
    if (config_.store != nullptr) {
        // WAL path: the record itself is appended, so durability
        // must precede the publish — an exact-tier answer implies
        // the record survives a crash.
        persisted = config_.store->append(record);
        registry_.put(workload, std::move(record));
    } else {
        // Legacy path: the whole registry is rewritten, so the
        // record must be published first to be included.
        registry_.put(workload, std::move(record));
        if (!config_.store_path.empty()) {
            persisted =
                registry_.save_store_file(config_.store_path);
            if (persisted) {
                std::lock_guard<std::mutex> lock(mu_);
                if (store_dirty_) {
                    // The whole-file rewrite includes every earlier
                    // record, so a previously failed persist is now
                    // flushed too.
                    store_dirty_ = false;
                    ++stats_.persist_retries;
                }
            }
        }
    }
    HERON_COUNTER_INC("serve.queue.completed");
    if (!persisted) {
        HERON_WARN << "serve: cannot persist tuned record for "
                   << key.canonical()
                   << (config_.store != nullptr
                           ? " (store degraded; stashed for retry)"
                           : "");
        HERON_COUNTER_INC("serve.store.persist_failures");
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
    if (!persisted) {
        ++stats_.persist_failures;
        if (config_.store == nullptr)
            store_dirty_ = true;
    }
}

} // namespace heron::serve
