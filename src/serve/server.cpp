#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/json_util.h"
#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

double
ms_since(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

bool
set_nonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/**
 * Best-effort single write used for connections refused at accept
 * time (cap/per-IP): the socket was never registered, so a partial
 * or failed write just means the client learns nothing before the
 * close — acceptable for a rejection path.
 */
void
send_reject_and_close(int fd, const std::string &line)
{
    std::string wire = line + "\n";
    (void)::send(fd, wire.data(), wire.size(),
                 MSG_DONTWAIT | MSG_NOSIGNAL);
    ::close(fd);
}

/**
 * Turn a registry result into the lookup response (tier, error
 * mapping, degraded flag). Shared by execute_request and the
 * batched worker path so the wire format cannot drift between the
 * single and pipelined lookups.
 */
void
fill_lookup_response(const Request &request,
                     const LookupResult &result,
                     const ServeContext &ctx, ExecutedRequest *out)
{
    out->tier = result.tier;
    if (!result.hit() && result.deadline_expired) {
        HERON_COUNTER_INC("serve.request.deadline_exceeded");
        out->response =
            format_error_response(request.id, "deadline_exceeded");
        out->ok = false;
        out->deadline_exceeded = true;
        return;
    }
    // A degraded store pauses tune intake; flag the miss so
    // clients can tell the pause from a full queue.
    bool degraded = ctx.store != nullptr && !ctx.store->healthy();
    out->response =
        format_lookup_response(request.id, result, degraded);
}

} // namespace

ExecutedRequest
execute_request(const Request &request, Clock::time_point arrival,
                const ServeContext &ctx)
{
    HERON_TRACE_SCOPE("serve/request");
    KernelRegistry &registry = *ctx.registry;
    TuneQueue *queue = ctx.queue;
    ExecutedRequest out;
    Clock::time_point handle_start = Clock::now();
    // Serialize time is whatever happens after the handler body
    // stamps this (response formatting); handlers that never stamp
    // it report the whole cost as handle time.
    Clock::time_point serialize_start = handle_start;
    switch (request.kind) {
      case Request::Kind::kLookup: {
        LookupOptions options;
        if (request.deadline_ms > 0.0)
            options.deadline =
                arrival +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        request.deadline_ms));
        if (options.deadline &&
            handle_start >= *options.deadline) {
            // Expired while queued: answering "late but right"
            // helps nobody and burns solver time the next request
            // needs. Answer the failure explicitly and move on.
            HERON_COUNTER_INC("serve.request.deadline_exceeded");
            out.response = format_error_response(
                request.id, "deadline_exceeded");
            out.ok = false;
            out.deadline_exceeded = true;
            break;
        }
        LookupResult result =
            registry.lookup(request.workload, options);
        serialize_start = Clock::now();
        fill_lookup_response(request, result, ctx, &out);
        HERON_HISTOGRAM_OBSERVE("serve.request.lookup_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kGraph: {
        if (ctx.graph == nullptr) {
            out.response = format_error_response(
                request.id, "graph serving disabled");
            out.ok = false;
            break;
        }
        LookupOptions options;
        if (request.deadline_ms > 0.0)
            options.deadline =
                arrival +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        request.deadline_ms));
        GraphResult result = ctx.graph->handle_graph(
            request.network, options, request.graph_inline);
        serialize_start = Clock::now();
        out.response = format_graph_response(request.id, result);
        HERON_HISTOGRAM_OBSERVE("serve.request.graph_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kGraphStatus: {
        if (ctx.graph == nullptr) {
            out.response = format_error_response(
                request.id, "graph serving disabled");
            out.ok = false;
            break;
        }
        auto result = ctx.graph->handle_status(request.graph_id);
        serialize_start = Clock::now();
        if (result) {
            out.response =
                format_graph_response(request.id, *result);
        } else {
            out.response = format_error_response(
                request.id,
                "unknown graph " +
                    std::to_string(request.graph_id));
            out.ok = false;
        }
        HERON_HISTOGRAM_OBSERVE("serve.request.graph_status_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kStats: {
        SloStatus slo_status;
        if (ctx.slo)
            slo_status = ctx.slo->status();
        GraphServiceStats graph_stats;
        if (ctx.graph)
            graph_stats = ctx.graph->stats();
        serialize_start = Clock::now();
        out.response = format_stats_response(
            request.id, registry, queue, ctx.runtime,
            ctx.slo ? &slo_status : nullptr, ctx.store,
            ctx.graph ? &graph_stats : nullptr);
        HERON_HISTOGRAM_OBSERVE("serve.request.stats_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kMetrics: {
        SloStatus slo_status;
        if (ctx.slo)
            slo_status = ctx.slo->status();
        serialize_start = Clock::now();
        out.response = format_metrics_response(
            request.id, ctx.request_metrics,
            ctx.slo ? &slo_status : nullptr);
        HERON_HISTOGRAM_OBSERVE("serve.request.metrics_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kDrain: {
        bool drained = true;
        if (queue) {
            if (ctx.cancel) {
                // Poll instead of blocking in TuneQueue::drain so a
                // server hard-kill can cancel the wait.
                for (;;) {
                    if (ctx.cancel->load(
                            std::memory_order_relaxed)) {
                        drained = false;
                        break;
                    }
                    TuneQueueLoad load = queue->load();
                    if (load.depth == 0 && !load.in_flight)
                        break;
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(2));
                }
            } else {
                queue->drain();
            }
        }
        serialize_start = Clock::now();
        out.response =
            format_ack_response(request.id, "drained", drained);
        HERON_HISTOGRAM_OBSERVE("serve.request.drain_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kSave: {
        bool saved;
        if (ctx.store != nullptr)
            saved = ctx.store->compact_now();
        else
            saved = !ctx.store_path.empty() &&
                    registry.save_store_file(ctx.store_path);
        serialize_start = Clock::now();
        out.response =
            format_ack_response(request.id, "saved", saved);
        HERON_HISTOGRAM_OBSERVE("serve.request.save_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kHealth: {
        serialize_start = Clock::now();
        out.response =
            format_health_response(request.id, ctx.store);
        HERON_HISTOGRAM_OBSERVE("serve.request.health_us",
                                ms_since(arrival) * 1e3);
        break;
      }
      case Request::Kind::kQuit:
        out.response =
            format_ack_response(request.id, "quitting", true);
        out.action = RequestAction::kCloseConn;
        break;
      case Request::Kind::kShutdown:
        out.response =
            format_ack_response(request.id, "shutting_down", true);
        out.action = RequestAction::kDrainServer;
        break;
    }
    Clock::time_point done = Clock::now();
    out.handle_us =
        std::chrono::duration<double, std::micro>(
            serialize_start - handle_start)
            .count();
    out.serialize_us = std::chrono::duration<double, std::micro>(
                           done - serialize_start)
                           .count();
    return out;
}

Server::Server(KernelRegistry &registry, TuneQueue *queue,
               ServerConfig config)
    : registry_(registry), queue_(queue),
      config_(std::move(config)),
      request_metrics_(config_.request_metrics),
      access_log_(config_.access_log),
      runtime_(ServeRuntime::current())
{
    config_.max_connections = std::max(1, config_.max_connections);
    config_.max_connections_per_ip =
        std::max(1, config_.max_connections_per_ip);
    config_.workers = std::max(1, config_.workers);
    config_.max_pending_requests =
        std::max<size_t>(1, config_.max_pending_requests);
    config_.tick_ms = std::max(1.0, config_.tick_ms);
    if (config_.slo.enabled())
        slo_ = std::make_unique<SloController>(
            config_.slo, (config_.max_pending_requests + 1) / 2);
    observe_config_.slow_request_ms = config_.slow_request_ms;
    exec_ctx_.registry = &registry_;
    exec_ctx_.queue = queue_;
    exec_ctx_.store_path = config_.store_path;
    exec_ctx_.cancel = &drain_cancel_;
    exec_ctx_.request_metrics = &request_metrics_;
    exec_ctx_.runtime = &runtime_;
    exec_ctx_.slo = slo_.get();
    exec_ctx_.store = config_.store;
    exec_ctx_.graph = config_.graph;
}

Server::~Server()
{
    if (loop_thread_.joinable())
        stop();
    if (wake_fd_ >= 0) {
        ::close(wake_fd_);
        wake_fd_ = -1;
    }
}

bool
Server::start(std::string *error)
{
    auto fail = [&](const std::string &what) {
        if (error)
            *error = what + ": " + std::strerror(errno);
        if (listen_fd_ >= 0)
            ::close(listen_fd_);
        if (epoll_fd_ >= 0)
            ::close(epoll_fd_);
        if (wake_fd_ >= 0)
            ::close(wake_fd_);
        listen_fd_ = epoll_fd_ = wake_fd_ = -1;
        return false;
    };

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        return fail("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (!set_nonblocking(listen_fd_))
        return fail("fcntl");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(),
                    &addr.sin_addr) != 1) {
        errno = EINVAL;
        return fail("inet_pton " + config_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind " + config_.host + ":" +
                    std::to_string(config_.port));
    if (::listen(listen_fd_, 128) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    bound_port_ = ntohs(addr.sin_port);

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        return fail("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0)
        return fail("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0)
        return fail("epoll_ctl listener");
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0)
        return fail("epoll_ctl wake");

    if (!config_.access_log.path.empty()) {
        std::string log_error;
        if (!access_log_.open(&log_error)) {
            HERON_WARN << "serve: " << log_error
                       << "; continuing without an access log";
        }
    }

    workers_running_.store(true);
    for (int i = 0; i < config_.workers; ++i) {
        workers_.push_back(std::make_unique<Worker>());
        Worker &worker = *workers_.back();
        worker.thread =
            std::thread([this, &worker] { worker_loop(worker); });
    }
    loop_running_ = true;
    loop_thread_ = std::thread([this] { loop(); });
    HERON_INFO << "serve: listening on " << config_.host << ":"
               << bound_port_ << " (" << config_.workers
               << " workers, " << config_.max_connections
               << " conns max)";
    return true;
}

void
Server::request_drain()
{
    // Async-signal-safe: one atomic store and one write(2).
    drain_requested_.store(true, std::memory_order_release);
    uint64_t one = 1;
    ssize_t ignored [[maybe_unused]] =
        ::write(wake_fd_, &one, sizeof(one));
}

int
Server::wait()
{
    if (loop_thread_.joinable())
        loop_thread_.join();
    // The loop has exited; release the executors. drain_cancel_
    // unblocks any worker still polling inside a "drain" command.
    drain_cancel_.store(true, std::memory_order_relaxed);
    workers_running_.store(false);
    for (auto &worker : workers_) {
        {
            std::lock_guard<std::mutex> lock(worker->mu);
        }
        worker->cv.notify_all();
    }
    for (auto &worker : workers_)
        if (worker->thread.joinable())
            worker->thread.join();
    // Workers are gone; now the loop's fds can close safely.
    // wake_fd_ stays open until destruction so a late
    // request_drain() (e.g. a second SIGTERM) writes to a dead-but-
    // owned fd instead of whatever reused the number.
    if (epoll_fd_ >= 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
    }
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    return graceful_exit_ ? 0 : 1;
}

int
Server::stop()
{
    request_drain();
    return wait();
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.accepted_conns =
        accepted_conns_.load(std::memory_order_relaxed);
    stats.closed_conns =
        closed_conns_.load(std::memory_order_relaxed);
    stats.rejected_conn_limit =
        rejected_conn_limit_.load(std::memory_order_relaxed);
    stats.rejected_ip_limit =
        rejected_ip_limit_.load(std::memory_order_relaxed);
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.responses = responses_.load(std::memory_order_relaxed);
    stats.shed_overloaded =
        shed_overloaded_.load(std::memory_order_relaxed);
    stats.deadline_exceeded =
        deadline_exceeded_.load(std::memory_order_relaxed);
    stats.oversized_lines =
        oversized_lines_.load(std::memory_order_relaxed);
    stats.parse_errors =
        parse_errors_.load(std::memory_order_relaxed);
    stats.idle_disconnects =
        idle_disconnects_.load(std::memory_order_relaxed);
    stats.overflow_disconnects =
        overflow_disconnects_.load(std::memory_order_relaxed);
    stats.drains = drains_.load(std::memory_order_relaxed);
    stats.hard_kills = hard_kills_.load(std::memory_order_relaxed);
    if (slo_) {
        SloStatus slo = slo_->status();
        stats.slo_shrinks = slo.shrinks;
        stats.slo_restores = slo.restores;
        stats.soft_watermark = slo.soft_watermark;
    } else {
        stats.soft_watermark =
            (config_.max_pending_requests + 1) / 2;
    }
    return stats;
}

SloStatus
Server::slo_status() const
{
    return slo_ ? slo_->status() : SloStatus{};
}

int64_t
Server::now_ms() const
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now().time_since_epoch())
        .count();
}

Conn *
Server::find_conn(uint64_t id)
{
    auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
}

void
Server::update_interest(Conn &conn)
{
    uint32_t want = 0;
    // Reads stop at EOF and during drain (no new requests); writes
    // are level-triggered only while output is queued.
    if (!conn.saw_eof() && !drain_active_)
        want |= EPOLLIN;
    if (conn.has_output())
        want |= EPOLLOUT;
    if (want == conn.interest)
        return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = conn.id();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd(), &ev);
    conn.interest = want;
}

void
Server::close_conn(Conn &conn)
{
    uint64_t id = conn.id();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd(), nullptr);
    ::close(conn.fd());
    auto ip = conns_per_ip_.find(conn.peer_ip());
    if (ip != conns_per_ip_.end() && --ip->second <= 0)
        conns_per_ip_.erase(ip);
    conns_.erase(id);
    closed_conns_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.server.closed_conns");
}

void
Server::accept_ready()
{
    for (;;) {
        sockaddr_in addr{};
        socklen_t len = sizeof(addr);
        int fd = ::accept4(listen_fd_,
                           reinterpret_cast<sockaddr *>(&addr),
                           &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN = drained the backlog; EMFILE/ENFILE etc. are
            // transient — log and retry on the next readable event.
            if (errno != EAGAIN && errno != EWOULDBLOCK) {
                HERON_WARN << "serve: accept failed: "
                           << std::strerror(errno);
            }
            return;
        }
        if (drain_active_) {
            ::close(fd);
            continue;
        }
        if (conns_.size() >=
            static_cast<size_t>(config_.max_connections)) {
            rejected_conn_limit_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.server.rejected_conn_limit");
            send_reject_and_close(
                fd, format_error_response(0, "overloaded"));
            continue;
        }
        char ip_text[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &addr.sin_addr, ip_text,
                    sizeof(ip_text));
        std::string ip(ip_text);
        int &per_ip = conns_per_ip_[ip];
        if (per_ip >= config_.max_connections_per_ip) {
            if (per_ip <= 0)
                conns_per_ip_.erase(ip);
            rejected_ip_limit_.fetch_add(1,
                                         std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.server.rejected_ip_limit");
            send_reject_and_close(
                fd, format_error_response(0, "overloaded"));
            continue;
        }
        ++per_ip;
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));

        uint64_t id = next_conn_id_++;
        auto conn = std::make_unique<Conn>(
            fd, id, ip, config_.max_line_bytes,
            config_.max_output_bytes);
        conn->last_activity_ms = now_ms();
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = id;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            if (--conns_per_ip_[ip] <= 0)
                conns_per_ip_.erase(ip);
            continue;
        }
        conn->interest = EPOLLIN;
        conns_.emplace(id, std::move(conn));
        accepted_conns_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.server.accepted_conns");
    }
}

const char *
Server::shed_reason(bool is_lookup) const
{
    if (pending_requests_ >= config_.max_pending_requests)
        return "hard_watermark";
    size_t soft = slo_ ? slo_->soft_watermark()
                       : (config_.max_pending_requests + 1) / 2;
    // Soft watermark: when the tune queue is saturated the system
    // is already behind on its misses — start shedding lookups at
    // the soft pending budget so control requests (stats, drain)
    // still get through. The SLO controller can pull the soft
    // watermark below its base when objectives burn; while shrunk,
    // lookups shed at the lowered mark even with a healthy queue.
    if (is_lookup && queue_ && queue_->load().saturated() &&
        pending_requests_ >= soft)
        return "queue_saturated";
    if (is_lookup && slo_ && slo_->shrunk() &&
        pending_requests_ >= soft)
        return "slo_shrunk";
    return "";
}

void
Server::on_line(Conn &conn, const std::string &line, bool overflow,
                bool *kill_conn)
{
    if (*kill_conn)
        return; // a previous line already doomed the connection
    auto queue_or_kill = [&](const std::string &response) {
        if (!conn.queue_line(response)) {
            overflow_disconnects_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.server.overflow_disconnects");
            *kill_conn = true;
        } else {
            responses_.fetch_add(1, std::memory_order_relaxed);
        }
    };

    if (overflow) {
        oversized_lines_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.server.oversized_lines");
        queue_or_kill(format_error_response(
            0, "request line exceeds " +
                   std::to_string(config_.max_line_bytes) +
                   " bytes"));
        return;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos)
        return;

    requests_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.server.requests");
    Clock::time_point parse_start = Clock::now();
    std::string error;
    auto request = parse_request(line, registry_.spec(), &error);
    Clock::time_point parsed = Clock::now();
    double parse_us = std::chrono::duration<double, std::micro>(
                          parsed - parse_start)
                          .count();
    if (!request) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.server.parse_errors");
        int64_t id = 0;
        if (auto token = json_extract(line, "id"))
            id = std::atoll(token->c_str());
        RequestObservation obs;
        obs.id = id;
        obs.endpoint = "invalid";
        obs.ok = false;
        obs.parse_us = parse_us;
        obs.total_us = parse_us;
        obs.arrival = parse_start;
        observe(obs, parsed);
        queue_or_kill(format_error_response(id, error));
        return;
    }

    const char *shed =
        shed_reason(request->kind == Request::Kind::kLookup);
    if (*shed) {
        shed_overloaded_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.server.shed_overloaded");
        RequestObservation obs;
        obs.id = request->id;
        obs.endpoint = request_kind_name(request->kind);
        obs.ok = false;
        obs.shed_reason = shed;
        obs.parse_us = parse_us;
        obs.total_us = parse_us;
        obs.arrival = parse_start;
        observe(obs, parsed);
        queue_or_kill(
            format_error_response(request->id, "overloaded"));
        return;
    }

    WorkItem item;
    item.conn_id = conn.id();
    item.request = std::move(*request);
    item.arrival = parsed;
    item.parse_us = parse_us;
    ++pending_requests_;
    ++conn.in_flight;
    // Per-connection worker affinity keeps pipelined responses in
    // request order.
    Worker &worker =
        *workers_[conn.id() % workers_.size()];
    {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.items.push_back(std::move(item));
    }
    worker.cv.notify_one();
}

void
Server::conn_readable(Conn &conn)
{
    char buf[16384];
    bool kill_conn = false;
    bool closed = false;
    for (;;) {
        ssize_t n = ::read(conn.fd(), buf, sizeof(buf));
        if (n > 0) {
            conn.last_activity_ms = now_ms();
            conn.scanner().feed(
                buf, static_cast<size_t>(n),
                [&](const std::string &line, bool overflow) {
                    on_line(conn, line, overflow, &kill_conn);
                });
            if (kill_conn) {
                close_conn(conn);
                closed = true;
                break;
            }
            continue;
        }
        if (n == 0) {
            // Half-close: the client finished sending but may still
            // be reading. Stop expecting requests; the connection
            // dies once in-flight responses are delivered.
            conn.set_saw_eof();
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        close_conn(conn);
        closed = true;
        break;
    }
    if (closed)
        return;
    flush_and_update(conn);
}

void
Server::conn_writable(Conn &conn)
{
    conn.last_activity_ms = now_ms();
    flush_and_update(conn);
}

void
Server::flush_and_update(Conn &conn)
{
    if (!conn.flush()) {
        close_conn(conn);
        return;
    }
    if (!conn.has_output() && conn.close_after_flush()) {
        close_conn(conn);
        return;
    }
    maybe_close_quiesced(conn);
}

void
Server::maybe_close_quiesced(Conn &conn)
{
    if (conn.saw_eof() && conn.in_flight == 0 &&
        !conn.has_output()) {
        close_conn(conn);
        return;
    }
    update_interest(conn);
}

void
Server::process_completions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completions_mu_);
        batch.swap(completions_);
    }
    for (auto &completion : batch) {
        if (pending_requests_ > 0)
            --pending_requests_;
        if (completion.action == RequestAction::kDrainServer)
            drain_requested_.store(true,
                                   std::memory_order_release);
        Conn *conn = find_conn(completion.conn_id);
        RequestObservation &obs = completion.obs;
        if (!conn) {
            // Client died before its answer was ready; still a
            // finished request for the latency windows.
            finish_observation(obs, Clock::now());
            continue;
        }
        if (conn->in_flight > 0)
            --conn->in_flight;
        Clock::time_point write_start = Clock::now();
        if (!conn->queue_line(completion.response)) {
            overflow_disconnects_.fetch_add(
                1, std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.server.overflow_disconnects");
            finish_observation(obs, write_start);
            close_conn(*conn);
            continue;
        }
        responses_.fetch_add(1, std::memory_order_relaxed);
        if (completion.action == RequestAction::kCloseConn)
            conn->set_close_after_flush();
        flush_and_update(*conn);
        Clock::time_point written = Clock::now();
        obs.write_us = std::chrono::duration<double, std::micro>(
                           written - write_start)
                           .count();
        finish_observation(obs, written);
    }
}

void
Server::finish_observation(RequestObservation &obs,
                           Clock::time_point now)
{
    obs.total_us = std::chrono::duration<double, std::micro>(
                       now - obs.arrival)
                       .count() +
                   obs.parse_us;
    if (obs.has_deadline)
        obs.deadline_slack_ms =
            obs.deadline_ms - obs.total_us / 1e3;
    observe(obs, now);
}

void
Server::begin_drain()
{
    if (drain_active_)
        return;
    drain_active_ = true;
    drains_.fetch_add(1, std::memory_order_relaxed);
    HERON_COUNTER_INC("serve.server.drains");
    HERON_INFO << "serve: draining (" << conns_.size()
               << " conns, " << pending_requests_
               << " in-flight requests)";
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
    // Stop reading: accepted requests finish, new bytes wait in
    // kernel buffers that die with the connection.
    for (auto &[id, conn] : conns_)
        update_interest(*conn);
    drain_deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               config_.drain_grace_ms));
}

void
Server::finish_drain(bool graceful)
{
    if (!graceful) {
        hard_kills_.fetch_add(1, std::memory_order_relaxed);
        HERON_COUNTER_INC("serve.server.hard_kills");
        HERON_WARN << "serve: drain grace expired; hard-killing "
                   << conns_.size() << " connection(s) with "
                   << pending_requests_ << " request(s) in flight";
        // Unblock any worker still waiting inside a drain command.
        drain_cancel_.store(true, std::memory_order_relaxed);
    }
    while (!conns_.empty()) {
        Conn &conn = *conns_.begin()->second;
        conn.flush(); // best effort
        close_conn(conn);
    }
    if (config_.store != nullptr) {
        // The WAL already holds every acknowledged record; the
        // compaction just leaves a tidy snapshot behind.
        if (!config_.store->compact_now())
            HERON_WARN << "serve: drain compaction failed (WAL "
                          "segments remain authoritative)";
    } else if (!config_.store_path.empty() &&
               !registry_.save_store_file(config_.store_path)) {
        HERON_WARN << "serve: cannot persist store to "
                   << config_.store_path;
    }
    // The access-log tail is part of the drain contract: whatever
    // was observed before the drain finishes must be on disk.
    access_log_.flush();
    graceful_exit_ = graceful;
    loop_running_ = false;
}

void
Server::observe(RequestObservation &obs, Clock::time_point now)
{
    observe_request(obs, &request_metrics_,
                    access_log_.enabled() ? &access_log_ : nullptr,
                    observe_config_, now);
}

void
Server::maybe_evaluate_slo(Clock::time_point now)
{
    if (!slo_ || !slo_->due(now))
        return;
    SloController::Signals signals;
    metrics::WindowSnapshot window =
        request_metrics_.lookup_window(now);
    signals.lookup_p95_us = window.percentile(95);
    signals.window_lookups = window.count;
    signals.total_lookups =
        lookup_requests_.load(std::memory_order_relaxed);
    signals.total_errors =
        deadline_exceeded_.load(std::memory_order_relaxed);
    SloController::Adjustment adjustment =
        slo_->evaluate(signals, now);
    if (adjustment == SloController::Adjustment::kNone)
        return;
    // Every watermark move lands in the access log unsampled, so an
    // operator can line adjustments up against the requests that
    // caused them.
    if (access_log_.enabled()) {
        SloStatus status = slo_->status();
        std::ostringstream line;
        line << "{\"event\":\"slo_adjustment\",\"direction\":\""
             << (adjustment == SloController::Adjustment::kShrink
                     ? "shrink"
                     : "restore")
             << "\",\"slo\":" << status.to_json() << "}";
        access_log_.append(line.str(), /*always=*/true);
    }
}

void
Server::tick(Clock::time_point now)
{
    maybe_evaluate_slo(now);
    if (config_.store != nullptr) {
        // Drive degraded-mode recovery probes even when no tune
        // completes, and log state transitions unsampled so an
        // operator can line them up against the failed requests.
        config_.store->tick(now);
        StoreState state = config_.store->state();
        if (state != last_store_state_) {
            last_store_state_ = state;
            HERON_GAUGE_SET("serve.store.degraded",
                            state == StoreState::kDegraded ? 1.0
                                                           : 0.0);
            if (access_log_.enabled()) {
                std::ostringstream line;
                line << "{\"event\":\""
                     << (state == StoreState::kDegraded
                             ? "store_degraded"
                             : "store_recovered")
                     << "\",\"store\":"
                     << config_.store->stats().to_json() << "}";
                access_log_.append(line.str(), /*always=*/true);
            }
        }
    }
    if (drain_active_) {
        bool workers_idle = true;
        // pending_requests_ counts admitted-but-unanswered work;
        // zero means every accepted request has its response queued
        // (or its connection died).
        if (pending_requests_ > 0)
            workers_idle = false;
        bool flushed = true;
        for (auto &[id, conn] : conns_)
            if (conn->has_output())
                flushed = false;
        if (workers_idle && flushed) {
            finish_drain(true);
            return;
        }
        if (now >= drain_deadline_) {
            finish_drain(false);
            return;
        }
        return;
    }

    // Idle sweep: a connection with no read/write progress and no
    // request in flight is a slow-loris seat — reclaim it.
    int64_t now_ms_value =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count();
    std::vector<uint64_t> idle;
    for (auto &[id, conn] : conns_) {
        if (conn->in_flight == 0 &&
            now_ms_value - conn->last_activity_ms >
                static_cast<int64_t>(config_.idle_timeout_ms))
            idle.push_back(id);
    }
    for (uint64_t id : idle) {
        if (Conn *conn = find_conn(id)) {
            idle_disconnects_.fetch_add(1,
                                        std::memory_order_relaxed);
            HERON_COUNTER_INC("serve.server.idle_disconnects");
            close_conn(*conn);
        }
    }
}

void
Server::loop()
{
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (loop_running_) {
        int timeout = static_cast<int>(config_.tick_ms);
        int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                             timeout);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            HERON_WARN << "serve: epoll_wait failed: "
                       << std::strerror(errno);
            break;
        }
        for (int i = 0; i < n; ++i) {
            uint64_t id = events[i].data.u64;
            uint32_t mask = events[i].events;
            if (id == kWakeId) {
                uint64_t drained;
                while (::read(wake_fd_, &drained,
                              sizeof(drained)) > 0) {
                }
                continue;
            }
            if (id == kListenerId) {
                if (listen_fd_ >= 0)
                    accept_ready();
                continue;
            }
            Conn *conn = find_conn(id);
            if (!conn)
                continue; // closed earlier in this batch
            if (mask & (EPOLLERR | EPOLLHUP)) {
                // Flush whatever still fits (the peer may have
                // only half-closed), then drop.
                conn->flush();
                close_conn(*conn);
                continue;
            }
            if (mask & EPOLLIN) {
                conn_readable(*conn);
                conn = find_conn(id);
                if (!conn)
                    continue;
            }
            if (mask & EPOLLOUT)
                conn_writable(*conn);
        }
        process_completions();
        if (drain_requested_.load(std::memory_order_acquire))
            begin_drain();
        tick(Clock::now());
    }
    // fds stay open: workers still write wake_fd_ until wait()
    // joins them, and closing here would race (and risk fd reuse).
    exited_.store(true, std::memory_order_release);
}

void
Server::worker_loop(Worker &worker)
{
    std::vector<WorkItem> batch;
    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(worker.mu);
            worker.cv.wait(lock, [&] {
                return !worker.items.empty() ||
                       !workers_running_.load(
                           std::memory_order_relaxed);
            });
            if (worker.items.empty())
                return; // stopping and drained
            // Drain the whole queue: a pipelined connection that
            // sent several requests in one burst gets them resolved
            // through one batched registry pass below instead of
            // paying a shard-snapshot acquisition each.
            while (!worker.items.empty()) {
                batch.push_back(std::move(worker.items.front()));
                worker.items.pop_front();
            }
        }

        // Batch eligibility: plain lookups with no deadline (a
        // deadline needs the per-request precheck/budget logic in
        // execute_request). debug_stall_ms disables batching so
        // chaos tests keep their one-stall-per-request model.
        std::vector<size_t> eligible;
        if (config_.debug_stall_ms <= 0.0 && batch.size() >= 2) {
            for (size_t i = 0; i < batch.size(); ++i)
                if (batch[i].request.kind ==
                        Request::Kind::kLookup &&
                    batch[i].request.deadline_ms <= 0.0)
                    eligible.push_back(i);
        }
        std::vector<LookupResult> batched_results;
        double batch_share_us = 0.0;
        if (eligible.size() >= 2) {
            std::vector<ops::Workload> queries;
            queries.reserve(eligible.size());
            for (size_t i : eligible)
                queries.push_back(batch[i].request.workload);
            Clock::time_point batch_start = Clock::now();
            batched_results = registry_.lookup_batch(queries);
            batch_share_us =
                std::chrono::duration<double, std::micro>(
                    Clock::now() - batch_start)
                    .count() /
                static_cast<double>(eligible.size());
        } else {
            eligible.clear();
        }

        size_t next_batched = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
            WorkItem &item = batch[i];
            Clock::time_point dispatched = Clock::now();
            if (config_.debug_stall_ms > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        config_.debug_stall_ms));
            ExecutedRequest executed;
            if (next_batched < eligible.size() &&
                eligible[next_batched] == i) {
                // Answer from the batched pass; formatting is the
                // only per-request work left.
                Clock::time_point serialize_start = Clock::now();
                fill_lookup_response(
                    item.request, batched_results[next_batched],
                    exec_ctx_, &executed);
                executed.handle_us = batch_share_us;
                executed.serialize_us =
                    std::chrono::duration<double, std::micro>(
                        Clock::now() - serialize_start)
                        .count();
                HERON_HISTOGRAM_OBSERVE(
                    "serve.request.lookup_us",
                    ms_since(item.arrival) * 1e3);
                ++next_batched;
            } else {
                executed = execute_request(item.request,
                                           item.arrival, exec_ctx_);
            }
            if (item.request.kind == Request::Kind::kLookup)
                lookup_requests_.fetch_add(
                    1, std::memory_order_relaxed);
            if (executed.deadline_exceeded)
                deadline_exceeded_.fetch_add(
                    1, std::memory_order_relaxed);
            Completion completion;
            completion.conn_id = item.conn_id;
            completion.response = std::move(executed.response);
            completion.action = executed.action;
            RequestObservation &obs = completion.obs;
            obs.id = item.request.id;
            obs.endpoint = request_kind_name(item.request.kind);
            if (item.request.kind == Request::Kind::kLookup)
                obs.tier = lookup_tier_name(executed.tier);
            obs.ok = executed.ok;
            obs.deadline_exceeded = executed.deadline_exceeded;
            obs.parse_us = item.parse_us;
            // debug_stall_ms burns inside the "queue" phase on
            // purpose: it models a starved executor, which is
            // queueing delay.
            obs.queue_us =
                std::chrono::duration<double, std::micro>(
                    dispatched - item.arrival)
                    .count() +
                config_.debug_stall_ms * 1e3;
            obs.handle_us = executed.handle_us;
            obs.serialize_us = executed.serialize_us;
            obs.has_deadline = item.request.deadline_ms > 0.0;
            obs.deadline_ms = item.request.deadline_ms;
            obs.arrival = item.arrival;
            {
                std::lock_guard<std::mutex> lock(completions_mu_);
                completions_.push_back(std::move(completion));
            }
        }
        uint64_t one = 1;
        ssize_t ignored [[maybe_unused]] =
            ::write(wake_fd_, &one, sizeof(one));
    }
}

} // namespace heron::serve
