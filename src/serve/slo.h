/**
 * @file
 * SloController: declarative serving objectives evaluated over the
 * sliding-window histograms, fed back into admission control.
 *
 * Objectives (any subset may be set):
 *   lookup_p95_us    the last-window p95 of lookup latency must
 *                    stay at or under this many microseconds
 *   max_error_rate   deadline_exceeded responses per lookup over
 *                    the evaluation interval must stay at or under
 *                    this fraction (sheds are deliberately NOT an
 *                    error signal: shedding is the controller's own
 *                    action, and counting it would lock the loop
 *                    into a shed-forever feedback spiral)
 *
 * Control law (burn-rate hysteresis): each evaluation is either
 * "burning" (some objective violated) or "ok". Only
 * burn_evals_to_shrink consecutive burning evaluations shrink the
 * soft pending-request watermark (by shrink_factor, floored at
 * min_soft_fraction of the base); only ok_evals_to_restore
 * consecutive ok evaluations grow it back one shrink-step toward
 * the base. A single noisy window therefore never moves the
 * watermark, and an oscillating signal keeps resetting both streaks
 * instead of flapping the watermark up and down.
 */
#ifndef HERON_SERVE_SLO_H
#define HERON_SERVE_SLO_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace heron::serve {

struct SloConfig {
    /** Lookup p95 objective in microseconds (0 = not set). */
    double lookup_p95_us = 0.0;
    /** deadline_exceeded-per-lookup ceiling (0 = not set). */
    double max_error_rate = 0.0;
    /** Evaluation cadence. */
    double eval_interval_s = 5.0;
    /** Consecutive burning evaluations before a shrink. */
    int burn_evals_to_shrink = 3;
    /** Consecutive ok evaluations before a restore step. */
    int ok_evals_to_restore = 5;
    /** Watermark multiplier per shrink (0 < f < 1). */
    double shrink_factor = 0.5;
    /** Shrink floor as a fraction of the base watermark. */
    double min_soft_fraction = 0.125;

    bool enabled() const
    {
        return lookup_p95_us > 0.0 || max_error_rate > 0.0;
    }
};

/** Point-in-time controller state for stats/metrics surfaces. */
struct SloStatus {
    bool enabled = false;
    bool burning = false;
    /** Watermark currently below base? */
    bool shrunk = false;
    size_t soft_watermark = 0;
    size_t base_soft_watermark = 0;
    int64_t evals = 0;
    int64_t shrinks = 0;
    int64_t restores = 0;
    double last_p95_us = 0.0;
    double last_error_rate = 0.0;

    /** JSON object for the stats/metrics responses. */
    std::string to_json() const;
};

class SloController
{
  public:
    using Clock = std::chrono::steady_clock;

    /**
     * @p base_soft_watermark is the healthy-state soft watermark
     * (the server's (max_pending+1)/2); the controller only ever
     * moves below it and back.
     */
    SloController(SloConfig config, size_t base_soft_watermark);

    bool enabled() const { return config_.enabled(); }

    /** True when eval_interval_s has elapsed since the last eval. */
    bool due(Clock::time_point now) const;

    /** Inputs to one evaluation. */
    struct Signals {
        /** Windowed lookup p95 (us); 0 when the window is empty. */
        double lookup_p95_us = 0.0;
        /** Lookups in the window (0 = idle: always healthy). */
        int64_t window_lookups = 0;
        /** Cumulative lookup count (for the error-rate delta). */
        int64_t total_lookups = 0;
        /** Cumulative deadline_exceeded count. */
        int64_t total_errors = 0;
    };

    /** What evaluate() decided, for logging. */
    enum class Adjustment : uint8_t {
        kNone = 0,
        kShrink,
        kRestore,
    };

    /**
     * Run one evaluation. Call from one thread (the server loop);
     * soft_watermark()/status() are safe from any thread.
     */
    Adjustment evaluate(const Signals &signals,
                        Clock::time_point now);

    /** Current soft watermark (base when never shrunk). */
    size_t soft_watermark() const
    {
        return soft_watermark_.load(std::memory_order_relaxed);
    }

    /** True while the watermark sits below base. */
    bool shrunk() const
    {
        return soft_watermark() < base_;
    }

    SloStatus status() const;

  private:
    SloConfig config_;
    size_t base_;
    size_t floor_;
    std::atomic<size_t> soft_watermark_;
    Clock::time_point last_eval_{};
    bool ever_evaluated_ = false;
    int burn_streak_ = 0;
    int ok_streak_ = 0;
    int64_t last_lookups_ = 0;
    int64_t last_errors_ = 0;
    std::atomic<bool> burning_{false};
    std::atomic<int64_t> evals_{0};
    std::atomic<int64_t> shrinks_{0};
    std::atomic<int64_t> restores_{0};
    std::atomic<double> last_p95_us_{0.0};
    std::atomic<double> last_error_rate_{0.0};
};

} // namespace heron::serve

#endif // HERON_SERVE_SLO_H
