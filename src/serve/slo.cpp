#include "serve/slo.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/logging.h"
#include "support/metrics.h"

namespace heron::serve {

std::string
SloStatus::to_json() const
{
    std::ostringstream out;
    out << std::setprecision(
        std::numeric_limits<double>::max_digits10);
    out << "{\"enabled\":" << (enabled ? "true" : "false")
        << ",\"burning\":" << (burning ? "true" : "false")
        << ",\"shrunk\":" << (shrunk ? "true" : "false")
        << ",\"soft_watermark\":" << soft_watermark
        << ",\"base_soft_watermark\":" << base_soft_watermark
        << ",\"evals\":" << evals << ",\"shrinks\":" << shrinks
        << ",\"restores\":" << restores
        << ",\"last_p95_us\":" << last_p95_us
        << ",\"last_error_rate\":" << last_error_rate << "}";
    return out.str();
}

SloController::SloController(SloConfig config,
                             size_t base_soft_watermark)
    : config_(std::move(config)),
      base_(std::max<size_t>(1, base_soft_watermark))
{
    config_.eval_interval_s =
        std::max(1e-3, config_.eval_interval_s);
    config_.burn_evals_to_shrink =
        std::max(1, config_.burn_evals_to_shrink);
    config_.ok_evals_to_restore =
        std::max(1, config_.ok_evals_to_restore);
    config_.shrink_factor =
        std::min(0.95, std::max(0.05, config_.shrink_factor));
    config_.min_soft_fraction =
        std::min(1.0, std::max(0.0, config_.min_soft_fraction));
    floor_ = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               static_cast<double>(base_) *
               config_.min_soft_fraction)));
    soft_watermark_.store(base_, std::memory_order_relaxed);
}

bool
SloController::due(Clock::time_point now) const
{
    if (!ever_evaluated_)
        return true;
    return std::chrono::duration<double>(now - last_eval_).count() >=
           config_.eval_interval_s;
}

SloController::Adjustment
SloController::evaluate(const Signals &signals,
                        Clock::time_point now)
{
    last_eval_ = now;
    ever_evaluated_ = true;
    evals_.fetch_add(1, std::memory_order_relaxed);

    // Error rate over this evaluation interval, from cumulative
    // counter deltas.
    int64_t lookups_delta =
        std::max<int64_t>(0, signals.total_lookups - last_lookups_);
    int64_t errors_delta =
        std::max<int64_t>(0, signals.total_errors - last_errors_);
    last_lookups_ = signals.total_lookups;
    last_errors_ = signals.total_errors;
    double error_rate =
        lookups_delta > 0 ? static_cast<double>(errors_delta) /
                                static_cast<double>(lookups_delta)
                          : 0.0;

    last_p95_us_.store(signals.lookup_p95_us,
                       std::memory_order_relaxed);
    last_error_rate_.store(error_rate, std::memory_order_relaxed);

    // An idle window cannot burn: no traffic means no evidence of
    // violation, and holding a shrunk watermark on a quiet server
    // would punish the first requests after the lull.
    bool p95_burn = config_.lookup_p95_us > 0.0 &&
                    signals.window_lookups > 0 &&
                    signals.lookup_p95_us > config_.lookup_p95_us;
    bool error_burn = config_.max_error_rate > 0.0 &&
                      lookups_delta > 0 &&
                      error_rate > config_.max_error_rate;
    bool burn = p95_burn || error_burn;
    burning_.store(burn, std::memory_order_relaxed);

    size_t soft = soft_watermark_.load(std::memory_order_relaxed);
    Adjustment adjustment = Adjustment::kNone;
    if (burn) {
        ok_streak_ = 0;
        if (++burn_streak_ >= config_.burn_evals_to_shrink) {
            burn_streak_ = 0;
            size_t next = std::max(
                floor_, static_cast<size_t>(std::floor(
                            static_cast<double>(soft) *
                            config_.shrink_factor)));
            if (next < soft) {
                soft_watermark_.store(next,
                                      std::memory_order_relaxed);
                shrinks_.fetch_add(1, std::memory_order_relaxed);
                HERON_COUNTER_INC("serve.slo.shrinks");
                HERON_WARN << "serve: SLO burning (p95="
                           << signals.lookup_p95_us
                           << "us, err_rate=" << error_rate
                           << "); soft watermark " << soft
                           << " -> " << next;
                adjustment = Adjustment::kShrink;
            }
        }
    } else {
        burn_streak_ = 0;
        if (soft < base_ &&
            ++ok_streak_ >= config_.ok_evals_to_restore) {
            ok_streak_ = 0;
            // One shrink-step back toward base per full ok streak:
            // recovery is deliberately slower than the shrink so a
            // barely-recovered server is not immediately reloaded.
            size_t next = std::min(
                base_, static_cast<size_t>(std::ceil(
                           static_cast<double>(soft) /
                           config_.shrink_factor)));
            if (next > soft) {
                soft_watermark_.store(next,
                                      std::memory_order_relaxed);
                restores_.fetch_add(1, std::memory_order_relaxed);
                HERON_COUNTER_INC("serve.slo.restores");
                HERON_INFO << "serve: SLO recovered; soft "
                              "watermark "
                           << soft << " -> " << next;
                adjustment = Adjustment::kRestore;
            }
        } else if (soft >= base_) {
            ok_streak_ = 0;
        }
    }
    return adjustment;
}

SloStatus
SloController::status() const
{
    SloStatus status;
    status.enabled = config_.enabled();
    status.burning = burning_.load(std::memory_order_relaxed);
    status.soft_watermark =
        soft_watermark_.load(std::memory_order_relaxed);
    status.base_soft_watermark = base_;
    status.shrunk = status.soft_watermark < base_;
    status.evals = evals_.load(std::memory_order_relaxed);
    status.shrinks = shrinks_.load(std::memory_order_relaxed);
    status.restores = restores_.load(std::memory_order_relaxed);
    status.last_p95_us =
        last_p95_us_.load(std::memory_order_relaxed);
    status.last_error_rate =
        last_error_rate_.load(std::memory_order_relaxed);
    return status;
}

} // namespace heron::serve
