/**
 * @file
 * DLA specifications: the architectural parameters and constraints
 * of the three accelerator archetypes the paper evaluates
 * (NVIDIA TensorCore GPUs, Intel DL Boost CPUs, and the TVM VTA),
 * with presets for V100, T4, A100, Xeon Gold 6240, and PYNQ VTA.
 *
 * The specs drive both (a) the generation rules, which read
 * intrinsic shapes / memory capacities / vector widths to emit
 * constraints, and (b) the simulators, which enforce the ground
 * truth the constraints are supposed to capture.
 */
#ifndef HERON_HW_DLA_SPEC_H
#define HERON_HW_DLA_SPEC_H

#include <cstdint>
#include <string>
#include <vector>

#include "schedule/template.h"

namespace heron::hw {

/** The DLA archetypes (three from the paper evaluation + TPU). */
enum class DlaKind : uint8_t {
    kTensorCore,
    kDlBoost,
    kVta,
    kTpu,
};

/** Archetype name. */
const char *dla_kind_name(DlaKind kind);

/** Full accelerator description. */
struct DlaSpec {
    DlaKind kind;
    std::string name;
    double clock_ghz = 1.0;
    /** SMs (GPU), cores (CPU), or compute engines (VTA). */
    int num_units = 1;

    /**
     * Tensor intrinsic shape constraint. When
     * intrinsic_mnk_candidates is non-empty, each of m/n/k must be
     * drawn from it and m*n*k must equal intrinsic_volume
     * (TensorCore). When fixed_m/n/k are non-zero the shape is fixed
     * (DL Boost 1x16x4, VTA 1x16x16).
     */
    std::vector<int64_t> intrinsic_mnk_candidates;
    int64_t intrinsic_volume = 0;
    int64_t fixed_m = 0, fixed_n = 0, fixed_k = 0;

    /** Peak tensorized MACs per cycle per unit. */
    double tensor_macs_per_cycle = 0;
    /** Scalar/SIMD fallback MACs per cycle per unit (CUDA-core path). */
    double scalar_macs_per_cycle = 0;

    /** DRAM bandwidth in bytes per cycle (whole chip). */
    double dram_bytes_per_cycle = 0;
    /** Per-unit staging memory bandwidth, bytes/cycle (shared/L2). */
    double staging_bytes_per_cycle = 0;

    /** Shared memory (GPU block) / L2 tile (CPU) capacity, bytes. */
    int64_t shared_capacity = 0;
    /** Shared memory per unit (occupancy limit), bytes. */
    int64_t shared_per_unit = 0;
    /** Fragment/register tile capacity per warp/core, bytes. */
    int64_t fragment_capacity = 0;
    /** L1 tile capacity (CPU), bytes. */
    int64_t l1_capacity = 0;
    /** VTA explicit buffers, bytes. */
    int64_t input_buffer_capacity = 0;
    int64_t weight_buffer_capacity = 0;
    int64_t acc_buffer_capacity = 0;

    /** Allowed vectorized access lengths (elements). */
    std::vector<int64_t> vector_lengths{1, 2, 4, 8};
    /** Max transaction width, bytes (16 on NVIDIA GPUs). */
    int64_t max_vector_bytes = 16;

    /** GPU limits. */
    int warp_size = 32;
    int max_threads_per_block = 1024;
    int max_warps_per_unit = 64;
    /** Shared memory banks (conflict modeling). */
    int num_banks = 32;

    /** Kernel launch / invocation overhead, microseconds. */
    double launch_overhead_us = 5.0;

    /** Peak tensorized throughput in GMAC/s (whole chip). */
    double peak_gmacs() const;

    /**
     * Content hash of every architectural parameter (name and
     * display fields included). Two specs hash equal exactly when a
     * schedule tuned for one is interchangeable with the other, so
     * the hash keys tuned-record stores: a record served for the
     * wrong spec revision would silently mis-tune, and the hash
     * makes such records miss instead.
     */
    uint64_t config_hash() const;

    /** Memory scopes this DLA stages data in (multi-level rule). */
    std::vector<schedule::MemScope> cache_scopes() const;

    // Presets.
    static DlaSpec v100();
    static DlaSpec t4();
    static DlaSpec a100();
    static DlaSpec dlboost();
    static DlaSpec vta();
    /** TPU-v1-like systolic accelerator (paper Table 3: fixed
     * 1x256x256 matrix unit, unified-buffer capacity m*256 <= 4M). */
    static DlaSpec tpu();
};

} // namespace heron::hw

#endif // HERON_HW_DLA_SPEC_H
