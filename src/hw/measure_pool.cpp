#include "hw/measure_pool.h"

#include <chrono>

#include "support/logging.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::hw {

namespace {

using Clock = CancelToken::Clock;

/** Convert milliseconds to the steady clock's duration type. */
Clock::duration
clock_ms(double ms)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

/** Per-task stat delta: @p after minus @p before, field by field. */
MeasureStats
stats_diff(const MeasureStats &before, const MeasureStats &after)
{
    MeasureStats d;
    d.measurements = after.measurements - before.measurements;
    d.invalid = after.invalid - before.invalid;
    d.transient_faults =
        after.transient_faults - before.transient_faults;
    d.timeouts = after.timeouts - before.timeouts;
    d.retries = after.retries - before.retries;
    d.exhausted_retries =
        after.exhausted_retries - before.exhausted_retries;
    d.outliers_rejected =
        after.outliers_rejected - before.outliers_rejected;
    d.replayed = after.replayed - before.replayed;
    d.hung = after.hung - before.hung;
    return d;
}

} // namespace

/** Resolution state of one batch slot. */
enum class SlotState : uint8_t {
    kPending,
    kRunning,
    kDone,
    kAbandoned,
};

/**
 * Shared state of one in-flight batch. Held by shared_ptr so an
 * abandoned (zombie) worker can still publish-and-retire safely
 * after the batch that spawned it has returned.
 */
struct MeasurePool::BatchState {
    struct Slot {
        const schedule::ConcreteProgram *program = nullptr;
        int64_t index = 0;
        SlotState state = SlotState::kPending;
        /** Watchdog already cancelled this slot. */
        bool cancel_sent = false;
        CancelToken token;
        Clock::time_point started{};
        MeasureResult result;
        MeasureStats delta;
        double seconds_delta = 0.0;
    };

    explicit BatchState(size_t n) : slots(n) {}

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Slot> slots;
    /** Next unclaimed slot (claims are in slot order). */
    size_t next = 0;
};

/** A spawned worker thread plus its retirement flag. */
struct MeasurePool::WorkerHandle {
    std::thread thread;
    /** Set by the worker just before it exits (join won't block). */
    std::shared_ptr<std::atomic<bool>> done;
};

MeasurePool::MeasurePool(const DlaSpec &spec, MeasureConfig config,
                         FaultConfig faults, PoolConfig pool)
    : spec_(spec), config_(config), faults_(faults), pool_(pool)
{
    HERON_CHECK_GE(pool_.workers, 0);
    HERON_CHECK_GT(pool_.deadline_ms, 0.0);
    HERON_CHECK_GE(pool_.grace_ms, 0.0);
    HERON_CHECK_GE(pool_.max_abandoned, 0);
}

MeasurePool::~MeasurePool()
{
    reap_workers(/*final_join=*/true);
}

int64_t
MeasurePool::reserve_index()
{
    return stats_.measurements++;
}

void
MeasurePool::note_replayed()
{
    ++stats_.measurements;
    ++stats_.replayed;
    HERON_COUNTER_INC("measure.replayed");
}

void
MeasurePool::merge_slot_delta(const MeasureStats &delta,
                              double seconds,
                              const MeasureResult &result)
{
    // measurements/replayed are mastered by reserve_index() and
    // note_replayed(); everything else folds in per task, in task
    // order (double addition is not associative).
    stats_.invalid += delta.invalid;
    stats_.transient_faults += delta.transient_faults;
    stats_.timeouts += delta.timeouts;
    stats_.retries += delta.retries;
    stats_.exhausted_retries += delta.exhausted_retries;
    stats_.outliers_rejected += delta.outliers_rejected;
    stats_.hung += delta.hung;
    simulated_seconds_ += seconds;
    if (result.failure == MeasureFailure::kHung) {
        // Counted at merge (not in the watchdog sweep) so the tally
        // is identical for cooperative cancels, abandonments, and
        // serial runs alike.
        ++watchdog_fires_;
        HERON_COUNTER_INC("pool.watchdog_fires");
    }
}

std::vector<MeasureResult>
MeasurePool::measure_batch(const std::vector<MeasureTask> &tasks)
{
    HERON_TRACE_SCOPE("pool/measure_batch");
    HERON_COUNTER_ADD("pool.tasks",
                      static_cast<int64_t>(tasks.size()));
    std::vector<MeasureResult> results;
    results.reserve(tasks.size());
    if (tasks.empty())
        return results;
    if (pool_.workers <= 1 || degraded_ || tasks.size() == 1)
        run_serial(tasks, results);
    else
        run_parallel(tasks, results);
    return results;
}

void
MeasurePool::run_serial(const std::vector<MeasureTask> &tasks,
                        std::vector<MeasureResult> &results)
{
    if (!serial_measurer_)
        serial_measurer_ = make_measurer(spec_, config_, faults_);
    HERON_GAUGE_SET("pool.active_workers", 1.0);
    for (const MeasureTask &task : tasks) {
        // The deadline still applies without threads: the token's
        // own deadline releases cooperative wedges, so serial runs
        // observe the same per-candidate budget as supervised ones.
        CancelToken token;
        token.set_deadline(Clock::now() + clock_ms(pool_.deadline_ms));
        serial_measurer_->set_cancel_token(&token);
        MeasureStats before = serial_measurer_->stats();
        double sec_before = serial_measurer_->simulated_seconds();
        MeasureResult result;
        {
            HERON_TRACE_SCOPE("pool/task");
            result = serial_measurer_->measure_indexed(*task.program,
                                                       task.index);
        }
        serial_measurer_->set_cancel_token(nullptr);
        merge_slot_delta(
            stats_diff(before, serial_measurer_->stats()),
            serial_measurer_->simulated_seconds() - sec_before,
            result);
        results.push_back(std::move(result));
    }
}

void
MeasurePool::spawn_worker(std::shared_ptr<BatchState> state)
{
    WorkerHandle handle;
    handle.done = std::make_shared<std::atomic<bool>>(false);
    auto done = handle.done;
    // Workers copy everything they touch (the zombie case must not
    // race the pool's next batch); only the shared BatchState and
    // the process-global metrics/trace registries are shared.
    DlaSpec spec = spec_;
    MeasureConfig config = config_;
    FaultConfig faults = faults_;
    double deadline_ms = pool_.deadline_ms;
    handle.thread = std::thread([state, done, spec, config, faults,
                                 deadline_ms]() {
        auto measurer = make_measurer(spec, config, faults);
        for (;;) {
            size_t claimed;
            {
                std::lock_guard<std::mutex> lock(state->mu);
                if (state->next >= state->slots.size())
                    break;
                claimed = state->next++;
                auto &slot = state->slots[claimed];
                slot.state = SlotState::kRunning;
                slot.started = Clock::now();
                slot.token.set_deadline(slot.started +
                                        clock_ms(deadline_ms));
            }
            auto &slot = state->slots[claimed];
            measurer->set_cancel_token(&slot.token);
            MeasureStats before = measurer->stats();
            double sec_before = measurer->simulated_seconds();
            MeasureResult result;
            {
                HERON_TRACE_SCOPE("pool/task");
                result = measurer->measure_indexed(*slot.program,
                                                   slot.index);
            }
            measurer->set_cancel_token(nullptr);
            bool retired = false;
            {
                std::lock_guard<std::mutex> lock(state->mu);
                if (slot.state == SlotState::kAbandoned) {
                    // The watchdog already resolved this slot with a
                    // fabricated result and moved on; this thread
                    // has been replaced. Discard and retire.
                    retired = true;
                } else {
                    slot.state = SlotState::kDone;
                    slot.result = std::move(result);
                    slot.delta =
                        stats_diff(before, measurer->stats());
                    slot.seconds_delta =
                        measurer->simulated_seconds() - sec_before;
                }
            }
            state->cv.notify_all();
            if (retired)
                break;
        }
        done->store(true, std::memory_order_release);
        state->cv.notify_all();
    });
    workers_.push_back(std::move(handle));
}

void
MeasurePool::run_slot_inline(BatchState &state, size_t slot_index)
{
    auto &slot = state.slots[slot_index];
    if (!serial_measurer_)
        serial_measurer_ = make_measurer(spec_, config_, faults_);
    serial_measurer_->set_cancel_token(&slot.token);
    MeasureStats before = serial_measurer_->stats();
    double sec_before = serial_measurer_->simulated_seconds();
    MeasureResult result;
    {
        HERON_TRACE_SCOPE("pool/task");
        result = serial_measurer_->measure_indexed(*slot.program,
                                                   slot.index);
    }
    serial_measurer_->set_cancel_token(nullptr);
    std::lock_guard<std::mutex> lock(state.mu);
    slot.state = SlotState::kDone;
    slot.result = std::move(result);
    slot.delta = stats_diff(before, serial_measurer_->stats());
    slot.seconds_delta =
        serial_measurer_->simulated_seconds() - sec_before;
}

void
MeasurePool::run_parallel(const std::vector<MeasureTask> &tasks,
                          std::vector<MeasureResult> &results)
{
    auto state = std::make_shared<BatchState>(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
        state->slots[i].program = tasks[i].program;
        state->slots[i].index = tasks[i].index;
    }

    size_t target = std::min(static_cast<size_t>(pool_.workers),
                             tasks.size());
    for (size_t i = 0; i < target; ++i)
        spawn_worker(state);
    HERON_GAUGE_SET("pool.active_workers",
                    static_cast<double>(workers_.size()));

    const Clock::duration deadline = clock_ms(pool_.deadline_ms);
    const Clock::duration grace = clock_ms(pool_.grace_ms);

    std::unique_lock<std::mutex> lock(state->mu);
    for (;;) {
        bool all_resolved = true;
        for (const auto &slot : state->slots) {
            if (slot.state == SlotState::kPending ||
                slot.state == SlotState::kRunning) {
                all_resolved = false;
                break;
            }
        }
        if (all_resolved)
            break;

        if (degraded_ && state->next < state->slots.size()) {
            // Attrition exhausted the worker budget: the supervisor
            // drains the remaining slots itself, serially. Inline
            // tasks are bounded by the token deadline (cooperative)
            // or the injected stall (non-cooperative), so watchdog
            // sweeps still happen regularly between them.
            size_t claimed = state->next++;
            auto &slot = state->slots[claimed];
            slot.state = SlotState::kRunning;
            slot.started = Clock::now();
            slot.token.set_deadline(slot.started + deadline);
            lock.unlock();
            run_slot_inline(*state, claimed);
            lock.lock();
            continue;
        }

        state->cv.wait_for(lock, std::chrono::milliseconds(10));

        Clock::time_point now = Clock::now();
        for (auto &slot : state->slots) {
            if (slot.state != SlotState::kRunning)
                continue;
            Clock::time_point due = slot.started + deadline;
            if (now >= due && !slot.cancel_sent) {
                slot.token.cancel();
                slot.cancel_sent = true;
                HERON_COUNTER_INC("pool.cancels_sent");
            }
            if (now >= due + grace) {
                // The worker ignored cancellation past the grace
                // period: declare it wedged, resolve the slot with
                // the canonical hung outcome, and replace the
                // worker (until attrition runs out).
                slot.state = SlotState::kAbandoned;
                slot.result = hung_result();
                slot.delta = MeasureStats{};
                slot.delta.hung = 1;
                slot.seconds_delta = hung_charge_s(config_, faults_);
                ++abandoned_;
                HERON_COUNTER_INC("pool.workers_abandoned");
                HERON_WARN << "measure pool: worker wedged on "
                              "measurement #"
                           << slot.index << "; abandoning ("
                           << abandoned_ << "/"
                           << pool_.max_abandoned << " tolerated)";
                if (abandoned_ > pool_.max_abandoned) {
                    if (!degraded_) {
                        degraded_ = true;
                        HERON_COUNTER_INC("pool.degraded");
                        HERON_WARN
                            << "measure pool: worker attrition "
                               "limit reached; degrading to "
                               "supervised serial execution";
                    }
                } else if (state->next < state->slots.size()) {
                    spawn_worker(state);
                }
            }
        }
    }
    lock.unlock();

    for (const auto &slot : state->slots) {
        results.push_back(slot.result);
        merge_slot_delta(slot.delta, slot.seconds_delta,
                         slot.result);
    }
    reap_workers(/*final_join=*/false);
    HERON_GAUGE_SET("pool.active_workers", 0.0);
}

void
MeasurePool::reap_workers(bool final_join)
{
    std::vector<WorkerHandle> stalled;
    for (auto &handle : workers_) {
        if (final_join ||
            handle.done->load(std::memory_order_acquire))
            handle.thread.join();
        else
            stalled.push_back(std::move(handle));
    }
    workers_.clear();

    // Zombies stall for a bounded time (the injected stall length);
    // reap the ones that have since finished, join all on shutdown.
    std::vector<WorkerHandle> still_stalled;
    for (auto &handle : zombies_) {
        if (final_join ||
            handle.done->load(std::memory_order_acquire))
            handle.thread.join();
        else
            still_stalled.push_back(std::move(handle));
    }
    zombies_ = std::move(still_stalled);
    for (auto &handle : stalled)
        zombies_.push_back(std::move(handle));
}

} // namespace heron::hw
