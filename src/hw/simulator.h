/**
 * @file
 * DLA performance simulators.
 *
 * The paper measures generated programs on real V100/T4/A100
 * TensorCores, a DL Boost Xeon, and a PYNQ VTA. Offline we replace
 * measurement with deterministic analytic models that preserve the
 * properties the paper's comparisons rely on:
 *
 *  - *hard validity*: programs violating architectural constraints
 *    (intrinsic shape, SPM capacity, vector width, thread limits)
 *    fail with an error, exactly like a CUDA compile/launch failure;
 *  - *large, structured performance variance*: tiling choices shift
 *    data traffic and parallelism by orders of magnitude; and
 *  - *irregularity*: occupancy cliffs, shared-memory bank conflicts
 *    (sensitive to storage_align), vector-width effects, and a small
 *    deterministic per-configuration residual make neighboring
 *    programs differ, as in paper Fig. 11.
 */
#ifndef HERON_HW_SIMULATOR_H
#define HERON_HW_SIMULATOR_H

#include <atomic>
#include <chrono>
#include <memory>
#include <string>

#include "hw/dla_spec.h"
#include "schedule/concrete.h"

namespace heron::hw {

/**
 * Cooperative cancellation token for one in-flight measurement.
 *
 * The measurement pool's watchdog supervises each candidate with a
 * per-task wall-clock deadline; long-running measurement code (the
 * injected-hang path today, real device harnesses eventually) polls
 * cancelled() and bails out instead of wedging its worker. The
 * token carries its own deadline so serial (supervisor-less)
 * measurement observes the same budget: cancelled() is true once
 * either the supervisor flips the flag or the deadline passes.
 *
 * Thread-safe: the supervisor cancels from one thread while the
 * worker polls from another.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Request cancellation (idempotent; visible to pollers). */
    void cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    /** Arm the wall-clock deadline (absolute time point). */
    void set_deadline(Clock::time_point deadline)
    {
        deadline_ns_.store(
            deadline.time_since_epoch().count(),
            std::memory_order_release);
    }

    /** True when the supervisor cancelled this task explicitly. */
    bool cancel_requested() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** True when a deadline is armed and has passed. */
    bool expired() const
    {
        int64_t ns = deadline_ns_.load(std::memory_order_acquire);
        return ns != 0 &&
               Clock::now().time_since_epoch().count() >= ns;
    }

    /** True when the task should stop: cancelled or past deadline. */
    bool cancelled() const
    {
        return cancel_requested() || expired();
    }

  private:
    std::atomic<bool> cancelled_{false};
    /** Deadline in Clock ticks since epoch (0 = none armed). */
    std::atomic<int64_t> deadline_ns_{0};
};

/** Simulator interface shared by the three DLA archetypes. */
class DlaSimulator
{
  public:
    virtual ~DlaSimulator() = default;

    /** The accelerator being modeled. */
    virtual const DlaSpec &spec() const = 0;

    /**
     * Validate @p program against the DLA's architectural
     * constraints. @return empty string when valid, else a
     * diagnostic (the analogue of a compile or launch error).
     */
    virtual std::string check(const schedule::ConcreteProgram &program)
        const = 0;

    /**
     * Modeled execution latency in milliseconds. Requires
     * check(program) to be empty.
     */
    virtual double latency_ms(const schedule::ConcreteProgram &program)
        const = 0;

    /**
     * Human-readable breakdown of the latency model's terms for a
     * valid program (diagnostics; empty by default).
     */
    virtual std::string
    explain(const schedule::ConcreteProgram &program) const
    {
        (void)program;
        return "";
    }
};

/** Create the simulator matching @p spec.kind. */
std::unique_ptr<DlaSimulator> make_simulator(const DlaSpec &spec);

namespace detail {

/**
 * Deterministic per-configuration residual in [-1, 1]: unmodeled
 * microarchitectural effects that make the landscape rugged without
 * breaking reproducibility.
 */
double config_residual(const schedule::ConcreteProgram &program);

/** Structural hash of a program (tiles, annotations, attach points). */
uint64_t program_hash(const schedule::ConcreteProgram &program);

/**
 * Shared-memory bank conflict ways for a staged tile: the number of
 * serialized passes a warp access needs given the innermost row
 * stride (elements + storage_align padding).
 */
int bank_conflict_ways(const DlaSpec &spec, int64_t row_elements,
                       int64_t pad_elements, int elem_bytes);

} // namespace detail

} // namespace heron::hw

#endif // HERON_HW_SIMULATOR_H
