/**
 * @file
 * Analytic TPU-v1-like systolic array model (extension beyond the
 * paper's three evaluation platforms, built from the constraints
 * the paper's Table 3 lists for TPU: fixed 1x256x256 matrix unit
 * and unified-buffer capacity).
 *
 * The model captures the systolic peculiarities that make naive
 * schedules slow: a pipeline-fill cost per weight tile (the 256-deep
 * array must drain/refill when weights change), unified-buffer
 * capacity pressure, and a thin DDR3 link.
 */
#include <algorithm>
#include <cmath>
#include <sstream>

#include "hw/simulator.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::hw {

namespace {

using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StageRole;

class TpuSim : public DlaSimulator
{
  public:
    explicit TpuSim(const DlaSpec &spec) : spec_(spec) {}

    const DlaSpec &spec() const override { return spec_; }

    std::string check(const ConcreteProgram &program) const override;
    double latency_ms(const ConcreteProgram &program) const override;

  private:
    DlaSpec spec_;
};

std::string
TpuSim::check(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    std::ostringstream err;

    if (main.intrinsic_m == 0)
        return "TPU has no scalar fallback; compute must be "
               "tensorized";
    if (main.intrinsic_m != spec_.fixed_m ||
        main.intrinsic_n != spec_.fixed_n ||
        main.intrinsic_k != spec_.fixed_k) {
        err << "TPU matrix unit requires " << spec_.fixed_m << "x"
            << spec_.fixed_n << "x" << spec_.fixed_k << ", got "
            << main.intrinsic_m << "x" << main.intrinsic_n << "x"
            << main.intrinsic_k;
        return err.str();
    }
    if (program.dtype != ir::DataType::kInt8)
        return "TPU matrix unit requires int8 inputs";

    int64_t unified = program.scope_bytes(MemScope::kInputBuffer);
    if (unified > spec_.input_buffer_capacity) {
        err << "unified buffer " << unified << "B exceeds "
            << spec_.input_buffer_capacity << "B (m*256 <= 4M)";
        return err.str();
    }
    int64_t weights = program.scope_bytes(MemScope::kWeightBuffer);
    if (weights > spec_.weight_buffer_capacity) {
        err << "weight staging " << weights << "B exceeds "
            << spec_.weight_buffer_capacity << "B";
        return err.str();
    }
    int64_t acc = program.scope_bytes(MemScope::kAccBuffer);
    if (acc > spec_.acc_buffer_capacity) {
        err << "accumulator memory " << acc << "B exceeds "
            << spec_.acc_buffer_capacity << "B";
        return err.str();
    }
    return "";
}

double
TpuSim::latency_ms(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();

    double macs = static_cast<double>(program.total_ops) / 2.0;
    double compute_cycles = macs / spec_.tensor_macs_per_cycle;

    // Weight-tile switches stall the systolic pipeline for ~2*256
    // cycles each (drain + refill). The weight stage's fill count
    // tells how often that happens.
    int64_t weight_switches = 1;
    double load_bytes = 0.0;
    double store_bytes = 0.0;
    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        double traffic = static_cast<double>(stage.fill_trips) *
                         static_cast<double>(stage.tile_elements) *
                         static_cast<double>(stage.bytes_per_element);
        if (stage.role == StageRole::kCacheRead) {
            load_bytes += traffic;
            if (stage.scope == MemScope::kWeightBuffer)
                weight_switches =
                    std::max(weight_switches, stage.fill_trips);
        } else if (stage.scope == MemScope::kGlobal) {
            store_bytes += traffic;
        }
    }
    load_bytes +=
        static_cast<double>(program.streamed_input_bytes);

    double fill_cycles = static_cast<double>(weight_switches) *
                         2.0 * static_cast<double>(spec_.fixed_n);
    double dram_cycles =
        (load_bytes + store_bytes) / spec_.dram_bytes_per_cycle;

    // Batch (m) depth amortizes the pipeline: deeper buffer tiles
    // along non-reduce serial loops keep the array busy.
    int64_t m_depth = 1;
    for (size_t a = 0; a < main.tile.size(); ++a) {
        if (main.axis_reduce[a])
            continue;
        for (size_t l = 0; l < main.tile[a].size(); ++l)
            if (main.roles[a][l] == LoopRole::kBuffer)
                m_depth = checked_mul(m_depth, main.tile[a][l]);
    }
    double eff_depth = std::min(
        1.0, static_cast<double>(m_depth) /
                 static_cast<double>(spec_.fixed_n));
    compute_cycles /= std::max(0.1, eff_depth);

    double bound = std::max({compute_cycles + fill_cycles,
                             dram_cycles});
    double total = bound + 0.2 * (compute_cycles + fill_cycles +
                                  dram_cycles - bound);

    double ms = total / (spec_.clock_ghz * 1e9) * 1e3 +
                spec_.launch_overhead_us / 1e3;
    ms *= 1.0 + 0.05 * detail::config_residual(program);
    return ms;
}

} // namespace

std::unique_ptr<DlaSimulator>
make_tpu_sim(const DlaSpec &spec)
{
    return std::make_unique<TpuSim>(spec);
}

} // namespace heron::hw
