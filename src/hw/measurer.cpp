#include "hw/measurer.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"
#include "support/math_util.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace heron::hw {

const char *
measure_failure_name(MeasureFailure failure)
{
    switch (failure) {
      case MeasureFailure::kNone: return "none";
      case MeasureFailure::kInvalid: return "invalid";
      case MeasureFailure::kTransient: return "transient";
      case MeasureFailure::kTimeout: return "timeout";
      case MeasureFailure::kHung: return "hung";
    }
    return "?";
}

Measurer::Measurer(const DlaSpec &spec, MeasureConfig config)
    : sim_(make_simulator(spec)), config_(config)
{
}

Rng
Measurer::per_attempt_rng(uint64_t stream_seed,
                          int attempt_index) const
{
    uint64_t h = hash_combine(stream_seed,
                              static_cast<uint64_t>(measure_index_));
    h = hash_combine(h, static_cast<uint64_t>(attempt_index));
    return Rng(h);
}

Measurer::Attempt
Measurer::attempt(const schedule::ConcreteProgram &program,
                  int attempt_index)
{
    Attempt run;
    // A failed build/launch still costs harness time.
    charge_seconds(config_.harness_overhead_s);
    run.error = sim_->check(program);
    if (!run.error.empty()) {
        run.failure = MeasureFailure::kInvalid;
        return run;
    }

    double model_ms = sim_->latency_ms(program);
    HERON_CHECK_GT(model_ms, 0.0);
    Rng rng = per_attempt_rng(config_.seed, attempt_index);
    for (int r = 0; r < config_.repeats; ++r) {
        double noisy =
            model_ms * std::max(0.5, 1.0 + config_.noise_std *
                                              rng.normal());
        if (config_.timeout_ms > 0.0 && noisy > config_.timeout_ms) {
            // The harness kills the run at the deadline.
            charge_seconds(config_.timeout_ms / 1e3);
            std::ostringstream msg;
            msg << "run exceeded timeout (" << config_.timeout_ms
                << " ms)";
            run.failure = MeasureFailure::kTimeout;
            run.error = msg.str();
            run.repeats_ms.clear();
            return run;
        }
        run.repeats_ms.push_back(noisy);
        charge_seconds(noisy / 1e3);
    }
    return run;
}

void
Measurer::aggregate(const Attempt &run,
                    const schedule::ConcreteProgram &program,
                    MeasureResult &result)
{
    HERON_CHECK(!run.repeats_ms.empty());
    std::vector<double> sorted = run.repeats_ms;
    std::sort(sorted.begin(), sorted.end());
    double median = sorted[sorted.size() / 2];

    double sum = 0.0;
    int kept = 0;
    for (double ms : run.repeats_ms) {
        if (config_.outlier_threshold > 0.0 &&
            run.repeats_ms.size() >= 3 &&
            ms > config_.outlier_threshold * median) {
            ++stats_.outliers_rejected;
            HERON_COUNTER_INC("measure.outliers_rejected");
            continue;
        }
        sum += ms;
        ++kept;
    }
    if (kept == 0) { // every repeat rejected; fall back to median
        sum = median;
        kept = 1;
    }
    result.valid = true;
    result.failure = MeasureFailure::kNone;
    result.latency_ms = sum / kept;
    result.gflops = static_cast<double>(program.total_ops) /
                    (result.latency_ms * 1e6);
}

MeasureResult
Measurer::measure(const schedule::ConcreteProgram &program)
{
    return measure_indexed(program, stats_.measurements);
}

MeasureResult
Measurer::measure_indexed(const schedule::ConcreteProgram &program,
                          int64_t index)
{
    HERON_TRACE_SCOPE("hw/measure");
    double simulated_before = simulated_seconds_;
    measure_index_ = index;
    ++stats_.measurements;
    HERON_COUNTER_INC("measure.measurements");
    MeasureResult result;
    for (int att = 0;; ++att) {
        Attempt run = attempt(program, att);
        result.attempts = att + 1;
        if (run.failure == MeasureFailure::kNone) {
            aggregate(run, program, result);
            HERON_HISTOGRAM_OBSERVE("measure.latency_ms",
                                    result.latency_ms);
            HERON_GAUGE_ADD("measure.simulated_seconds",
                            simulated_seconds_ - simulated_before);
            return result;
        }
        if (run.failure == MeasureFailure::kTransient) {
            ++stats_.transient_faults;
            HERON_COUNTER_INC("measure.transient_faults");
        }
        if (run.failure == MeasureFailure::kTimeout) {
            ++stats_.timeouts;
            HERON_COUNTER_INC("measure.timeouts");
        }
        if (run.failure == MeasureFailure::kHung) {
            ++stats_.hung;
            HERON_COUNTER_INC("measure.hung");
        }

        bool retryable = run.failure != MeasureFailure::kInvalid &&
                         run.failure != MeasureFailure::kHung;
        if (!retryable || att >= config_.max_retries) {
            if (run.failure == MeasureFailure::kInvalid) {
                ++stats_.invalid;
                HERON_COUNTER_INC("measure.invalid");
            } else if (run.failure == MeasureFailure::kHung) {
                // Already counted above; a wedge is final, not an
                // exhausted retry.
            } else {
                ++stats_.exhausted_retries;
                HERON_COUNTER_INC("measure.exhausted_retries");
            }
            result.valid = false;
            result.failure = run.failure;
            result.error = std::move(run.error);
            HERON_GAUGE_ADD("measure.simulated_seconds",
                            simulated_seconds_ - simulated_before);
            return result;
        }
        ++stats_.retries;
        HERON_COUNTER_INC("measure.retries");
        // Exponential backoff before re-arming the board.
        charge_seconds(config_.retry_backoff_s *
                       static_cast<double>(int64_t{1} << att));
    }
}

void
Measurer::note_replayed()
{
    ++stats_.measurements;
    ++stats_.replayed;
    HERON_COUNTER_INC("measure.replayed");
}

} // namespace heron::hw
