#include "hw/measurer.h"

#include <algorithm>

#include "support/logging.h"

namespace heron::hw {

Measurer::Measurer(const DlaSpec &spec, MeasureConfig config)
    : sim_(make_simulator(spec)), config_(config), rng_(config.seed)
{
}

MeasureResult
Measurer::measure(const schedule::ConcreteProgram &program)
{
    ++count_;
    MeasureResult result;
    result.error = sim_->check(program);
    // A failed build/launch still costs harness time.
    simulated_seconds_ += config_.harness_overhead_s;
    if (!result.error.empty()) {
        ++invalid_count_;
        return result;
    }

    double model_ms = sim_->latency_ms(program);
    HERON_CHECK_GT(model_ms, 0.0);
    double sum_ms = 0.0;
    for (int r = 0; r < config_.repeats; ++r) {
        double noisy =
            model_ms * std::max(0.5, 1.0 + config_.noise_std *
                                              rng_.normal());
        sum_ms += noisy;
        simulated_seconds_ += noisy / 1e3;
    }
    result.valid = true;
    result.latency_ms = sum_ms / config_.repeats;
    result.gflops = static_cast<double>(program.total_ops) /
                    (result.latency_ms * 1e6);
    return result;
}

} // namespace heron::hw
