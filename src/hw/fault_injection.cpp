#include "hw/fault_injection.h"

#include <chrono>
#include <thread>

#include "support/logging.h"
#include "support/metrics.h"

namespace heron::hw {

FaultyMeasurer::FaultyMeasurer(const DlaSpec &spec,
                               MeasureConfig config,
                               FaultConfig faults)
    : Measurer(spec, config), faults_(faults)
{
    HERON_CHECK_GE(faults_.transient_rate, 0.0);
    HERON_CHECK_GE(faults_.timeout_rate, 0.0);
    HERON_CHECK_GE(faults_.outlier_rate, 0.0);
    HERON_CHECK_GE(faults_.spurious_invalid_rate, 0.0);
    HERON_CHECK_GE(faults_.hung_rate, 0.0);
    HERON_CHECK_GT(faults_.outlier_scale, 1.0);
}

MeasureResult
hung_result()
{
    MeasureResult result;
    result.valid = false;
    result.failure = MeasureFailure::kHung;
    result.error = "injected wedged kernel";
    result.attempts = 1;
    return result;
}

double
hung_charge_s(const MeasureConfig &config, const FaultConfig &faults)
{
    return config.harness_overhead_s + faults.hang_s;
}

Measurer::Attempt
FaultyMeasurer::attempt(const schedule::ConcreteProgram &program,
                        int attempt_index)
{
    Rng dice = per_attempt_rng(faults_.seed, attempt_index);
    // Draw every category up front so the stream shape does not
    // depend on which fault (if any) fires.
    double u_transient = dice.uniform();
    double u_timeout = dice.uniform();
    double u_spurious = dice.uniform();
    double u_hung = dice.uniform();

    // A wedge preempts everything else: the kernel never comes back,
    // so no other fault category can be observed. Checked on the
    // first attempt only — the measurer treats kHung as final.
    if (attempt_index == 0 && u_hung < faults_.hung_rate) {
        ++injected_;
        HERON_COUNTER_INC("fault.injected_hung");
        // Simulated cost is fixed by hung_charge_s() so the pool can
        // fabricate an identical charge for abandoned workers.
        charge_seconds(hung_charge_s(config(), faults_));
        const CancelToken *token = cancel_token();
        if (faults_.hung_ignores_cancel) {
            // Worst case: the run ignores cancellation entirely and
            // stalls its worker in real time until the pool abandons
            // it (or the stall elapses in a serial run).
            std::this_thread::sleep_for(std::chrono::duration<double,
                                        std::milli>(
                faults_.hung_stall_ms));
        } else if (token != nullptr) {
            // Cooperative wedge: block until the watchdog cancels.
            while (!token->cancelled())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
        return Attempt{MeasureFailure::kHung,
                       "injected wedged kernel",
                       {}};
    }

    if (u_transient < faults_.transient_rate) {
        ++injected_;
        HERON_COUNTER_INC("fault.injected_transient");
        charge_seconds(config().harness_overhead_s);
        Attempt run;
        run.failure = MeasureFailure::kTransient;
        run.error = "injected transient fault (board reset)";
        return run;
    }
    if (u_timeout < faults_.timeout_rate) {
        ++injected_;
        HERON_COUNTER_INC("fault.injected_timeout");
        charge_seconds(config().harness_overhead_s);
        charge_seconds(config().timeout_ms > 0.0
                           ? config().timeout_ms / 1e3
                           : faults_.hang_s);
        Attempt run;
        run.failure = MeasureFailure::kTimeout;
        run.error = "injected kernel hang";
        return run;
    }
    if (u_spurious < faults_.spurious_invalid_rate) {
        ++injected_;
        HERON_COUNTER_INC("fault.injected_spurious_invalid");
        charge_seconds(config().harness_overhead_s);
        Attempt run;
        run.failure = MeasureFailure::kInvalid;
        run.error = "injected spurious launch failure";
        return run;
    }

    Attempt run = Measurer::attempt(program, attempt_index);
    if (run.failure == MeasureFailure::kNone &&
        faults_.outlier_rate > 0.0) {
        for (double &ms : run.repeats_ms) {
            if (dice.uniform() >= faults_.outlier_rate)
                continue;
            ++injected_;
            HERON_COUNTER_INC("fault.injected_outlier");
            double scaled = ms * faults_.outlier_scale;
            if (config().timeout_ms > 0.0 &&
                scaled > config().timeout_ms) {
                // A slow-enough run hits the watchdog instead.
                charge_seconds((config().timeout_ms - ms) / 1e3);
                run.failure = MeasureFailure::kTimeout;
                run.error = "injected outlier exceeded timeout";
                run.repeats_ms.clear();
                return run;
            }
            charge_seconds((scaled - ms) / 1e3);
            ms = scaled;
        }
    }
    return run;
}

std::unique_ptr<Measurer>
make_measurer(const DlaSpec &spec, MeasureConfig config,
              FaultConfig faults)
{
    if (faults.any())
        return std::make_unique<FaultyMeasurer>(spec, config,
                                                faults);
    return std::make_unique<Measurer>(spec, config);
}

} // namespace heron::hw
