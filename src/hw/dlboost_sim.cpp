/**
 * @file
 * Analytic DL Boost (AVX512-VNNI CPU) performance model.
 *
 * Conventions: kCore role levels count parallel chunks mapped onto
 * cores; L2-scope cache stages model cache-blocking tiles whose
 * fills hit DRAM, L1-scope stages model inner tiles whose fills hit
 * L2. Tensorized programs use the fixed 1x16x4 int8 VNNI intrinsic.
 */
#include <algorithm>
#include <cmath>
#include <sstream>

#include "hw/simulator.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::hw {

namespace {

using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StageRole;

class DlBoostSim : public DlaSimulator
{
  public:
    explicit DlBoostSim(const DlaSpec &spec) : spec_(spec) {}

    const DlaSpec &spec() const override { return spec_; }

    std::string check(const ConcreteProgram &program) const override;
    double latency_ms(const ConcreteProgram &program) const override;

  private:
    DlaSpec spec_;
};

std::string
DlBoostSim::check(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    std::ostringstream err;

    if (main.intrinsic_m > 0) {
        if (main.intrinsic_m != spec_.fixed_m ||
            main.intrinsic_n != spec_.fixed_n ||
            main.intrinsic_k != spec_.fixed_k) {
            err << "VNNI intrinsic requires " << spec_.fixed_m << "x"
                << spec_.fixed_n << "x" << spec_.fixed_k << ", got "
                << main.intrinsic_m << "x" << main.intrinsic_n << "x"
                << main.intrinsic_k;
            return err.str();
        }
        if (program.dtype != ir::DataType::kInt8)
            return "VNNI intrinsic requires int8 inputs";
    }

    int64_t l2 = program.scope_bytes(MemScope::kL2);
    if (l2 > spec_.shared_capacity) {
        err << "L2 tile " << l2 << "B exceeds " << spec_.shared_capacity
            << "B";
        return err.str();
    }
    int64_t l1 = program.scope_bytes(MemScope::kL1);
    if (l1 > spec_.l1_capacity) {
        err << "L1 tile " << l1 << "B exceeds " << spec_.l1_capacity
            << "B";
        return err.str();
    }
    int64_t regs = program.scope_bytes(MemScope::kRegister);
    if (regs > spec_.fragment_capacity) {
        err << "accumulator tile " << regs << "B exceeds register file";
        return err.str();
    }

    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        const auto &lens = spec_.vector_lengths;
        if (std::find(lens.begin(), lens.end(), stage.vector_len) ==
            lens.end()) {
            err << stage.name << ": vector length " << stage.vector_len
                << " unsupported";
            return err.str();
        }
        if (stage.row_elements > 0 &&
            stage.row_elements % stage.vector_len != 0) {
            err << stage.name << ": unaligned vectorized access";
            return err.str();
        }
    }
    return "";
}

double
DlBoostSim::latency_ms(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    bool tensorized = main.intrinsic_m > 0;

    int64_t parallel = std::max<int64_t>(
        1, main.role_product(LoopRole::kCore));
    int64_t cores = std::min<int64_t>(spec_.num_units, parallel);
    // Load imbalance when the parallel chunk count barely exceeds
    // the core count.
    double balance =
        static_cast<double>(parallel) /
        (static_cast<double>(ceil_div(parallel, cores)) *
         static_cast<double>(cores));

    double macs = static_cast<double>(program.total_ops) / 2.0;
    double per_cycle =
        tensorized ? spec_.tensor_macs_per_cycle
                   : spec_.scalar_macs_per_cycle;

    // Inner-kernel efficiency: accumulate in registers, stay in L1.
    int64_t l1 = program.scope_bytes(MemScope::kL1);
    double eff_l1 =
        l1 == 0 ? 0.7
                : std::min(1.0, static_cast<double>(spec_.l1_capacity) /
                                    (static_cast<double>(l1) + 1.0));
    eff_l1 = std::clamp(eff_l1, 0.3, 1.0);
    int64_t regs = program.scope_bytes(MemScope::kRegister);
    // Peak needs >= 8 independent accumulators; tiny tiles stall the
    // FMA pipeline, huge ones spill (checked above).
    double acc_elems =
        regs > 0 ? static_cast<double>(regs) / 4.0 : 4.0;
    double eff_acc = std::clamp(acc_elems / 128.0, 0.35, 1.0);
    double unroll = static_cast<double>(std::max<int64_t>(
        1, main.unroll));
    double eff_unroll =
        1.0 / (1.10 - 0.10 * std::min(1.0,
                                      std::log2(1.0 + unroll) / 4.0));

    double compute_cycles =
        macs / (per_cycle * static_cast<double>(cores) * balance *
                eff_l1 * eff_acc * eff_unroll);
    if (!tensorized && program.dtype == ir::DataType::kInt8) {
        // Scalar path upconverts int8 to fp32.
        compute_cycles *= 1.3;
    }

    double dram_bytes = 0.0;
    double l2_bytes = 0.0;
    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        double traffic = static_cast<double>(stage.fill_trips) *
                         static_cast<double>(stage.tile_elements) *
                         static_cast<double>(stage.bytes_per_element);
        double vec_eff =
            0.6 + 0.4 * std::min(1.0,
                                 static_cast<double>(
                                     stage.vector_len *
                                     stage.bytes_per_element) /
                                     64.0);
        // Packed (oneDNN-style) weight blockings stream dense,
        // fully-used cache lines; raw strided layouts waste ~30% of
        // each line (paper §7.1 credits ~30% to these layouts).
        if (stage.packed_layout)
            traffic *= 0.70;
        switch (stage.scope) {
          case MemScope::kL2:
            dram_bytes += traffic / vec_eff;
            break;
          case MemScope::kL1:
          case MemScope::kRegister:
            l2_bytes += traffic / vec_eff;
            break;
          default:
            dram_bytes += traffic;
        }
    }
    // Unstaged inputs stream from DRAM every iteration.
    dram_bytes +=
        static_cast<double>(program.streamed_input_bytes);

    double dram_cycles = dram_bytes / spec_.dram_bytes_per_cycle;
    double l2_cycles = l2_bytes / (spec_.staging_bytes_per_cycle *
                                   static_cast<double>(cores));

    double bound = std::max({compute_cycles, dram_cycles, l2_cycles});
    double total =
        bound +
        0.2 * (compute_cycles + dram_cycles + l2_cycles - bound);

    double ms = total / (spec_.clock_ghz * 1e9) * 1e3 +
                spec_.launch_overhead_us / 1e3;
    ms *= 1.0 + 0.05 * detail::config_residual(program);
    return ms;
}

} // namespace

std::unique_ptr<DlaSimulator>
make_dlboost_sim(const DlaSpec &spec)
{
    return std::make_unique<DlBoostSim>(spec);
}

} // namespace heron::hw
