/**
 * @file
 * Analytic TensorCore (GPU) performance model.
 *
 * Conventions: for tensorized programs the kThread role counts
 * *warps*; for the scalar (CUDA-core) path it counts *threads*.
 * DRAM traffic is derived from cache-read/write stage fill counts;
 * shared-memory bandwidth is charged with bank-conflict
 * serialization sensitive to storage_align padding.
 */
#include <algorithm>
#include <cmath>
#include <sstream>

#include "hw/simulator.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::hw {

namespace {

using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StageRole;

class TensorCoreSim : public DlaSimulator
{
  public:
    explicit TensorCoreSim(const DlaSpec &spec) : spec_(spec) {}

    const DlaSpec &spec() const override { return spec_; }

    std::string check(const ConcreteProgram &program) const override;
    double latency_ms(const ConcreteProgram &program) const override;
    std::string explain(const ConcreteProgram &program) const override;

  private:
    DlaSpec spec_;

    struct Breakdown {
        double compute_cycles = 0;
        double dram_cycles = 0;
        double shared_cycles = 0;
        double overhead_cycles = 0;
        double eff_occ = 0;
        int64_t blocks = 0;
        int64_t warps = 0;
        int64_t resident = 0;
        double ms = 0;
    };
    Breakdown model(const ConcreteProgram &program) const;

    /** Warps (tensorized) or threads (scalar) per block. */
    int64_t
    thread_units(const ConcreteStage &main) const
    {
        return std::max<int64_t>(1, main.role_product(LoopRole::kThread));
    }
};

std::string
TensorCoreSim::check(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    std::ostringstream err;

    bool tensorized = main.intrinsic_m > 0;
    if (tensorized) {
        auto in_candidates = [&](int64_t v) {
            const auto &c = spec_.intrinsic_mnk_candidates;
            return std::find(c.begin(), c.end(), v) != c.end();
        };
        if (!spec_.intrinsic_mnk_candidates.empty()) {
            if (!in_candidates(main.intrinsic_m) ||
                !in_candidates(main.intrinsic_n) ||
                !in_candidates(main.intrinsic_k)) {
                err << "unsupported wmma shape " << main.intrinsic_m
                    << "x" << main.intrinsic_n << "x"
                    << main.intrinsic_k;
                return err.str();
            }
            if (main.intrinsic_m * main.intrinsic_n *
                    main.intrinsic_k != spec_.intrinsic_volume) {
                err << "wmma m*n*k must equal "
                    << spec_.intrinsic_volume;
                return err.str();
            }
        }
    }

    int64_t units = thread_units(main);
    int64_t threads = tensorized ? units * spec_.warp_size : units;
    if (threads > spec_.max_threads_per_block) {
        err << "threads per block " << threads << " exceeds "
            << spec_.max_threads_per_block;
        return err.str();
    }
    int64_t vthreads = main.role_product(LoopRole::kVThread);
    if (vthreads > 32)
        return "too many virtual threads";

    int64_t shared = program.scope_bytes(MemScope::kShared);
    if (shared > spec_.shared_capacity) {
        err << "shared memory " << shared << "B exceeds "
            << spec_.shared_capacity << "B";
        return err.str();
    }
    int64_t fragment = program.scope_bytes(MemScope::kFragment);
    if (fragment > spec_.fragment_capacity) {
        err << "fragment/register tile " << fragment << "B exceeds "
            << spec_.fragment_capacity << "B";
        return err.str();
    }

    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        const auto &lens = spec_.vector_lengths;
        if (std::find(lens.begin(), lens.end(), stage.vector_len) ==
            lens.end()) {
            err << stage.name << ": vector length "
                << stage.vector_len << " unsupported";
            return err.str();
        }
        if (stage.vector_len * stage.bytes_per_element >
            spec_.max_vector_bytes) {
            err << stage.name << ": vector access exceeds "
                << spec_.max_vector_bytes << "B";
            return err.str();
        }
        if (stage.row_elements > 0 &&
            stage.row_elements % stage.vector_len != 0) {
            err << stage.name << ": unaligned vectorized access ("
                << stage.row_elements << " % " << stage.vector_len
                << ")";
            return err.str();
        }
    }
    return "";
}

double
TensorCoreSim::latency_ms(const ConcreteProgram &program) const
{
    return model(program).ms;
}

std::string
TensorCoreSim::explain(const ConcreteProgram &program) const
{
    Breakdown b = model(program);
    std::ostringstream out;
    out << "blocks=" << b.blocks << " warps=" << b.warps
        << " resident=" << b.resident << " eff_occ=" << b.eff_occ
        << " compute_cycles=" << b.compute_cycles
        << " dram_cycles=" << b.dram_cycles
        << " shared_cycles=" << b.shared_cycles
        << " overhead_cycles=" << b.overhead_cycles
        << " ms=" << b.ms;
    return out.str();
}

TensorCoreSim::Breakdown
TensorCoreSim::model(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    bool tensorized = main.intrinsic_m > 0;

    int64_t blocks = std::max<int64_t>(
        1, main.role_product(LoopRole::kGrid));
    int64_t units = thread_units(main);
    int64_t warps =
        tensorized ? units
                   : std::max<int64_t>(1, units / spec_.warp_size);
    int64_t active_sms = std::min<int64_t>(spec_.num_units, blocks);

    // Occupancy: resident blocks per SM limited by shared memory and
    // warp count.
    int64_t shared = program.scope_bytes(MemScope::kShared);
    int64_t by_mem = shared > 0 ? spec_.shared_per_unit / shared : 8;
    int64_t by_warp = std::max<int64_t>(
        1, spec_.max_warps_per_unit / std::max<int64_t>(1, warps));
    int64_t resident = std::clamp<int64_t>(
        std::min(by_mem, by_warp), 1, 8);
    resident = std::min(resident, ceil_div(blocks, active_sms));
    double resident_warps =
        static_cast<double>(resident * warps);
    double eff_occ =
        std::min(1.0, 0.25 + 0.75 * resident_warps / 16.0);

    // Compute throughput.
    double macs = static_cast<double>(program.total_ops) / 2.0;
    double compute_cycles;
    if (tensorized) {
        double eff_warp =
            std::min(1.0, static_cast<double>(warps) / 4.0);
        if (warps > 32)
            eff_warp *= 0.9;
        double shape_skew = std::fabs(
            std::log2(static_cast<double>(main.intrinsic_m) /
                      static_cast<double>(main.intrinsic_n)));
        double eff_shape = 1.0 - 0.04 * shape_skew;
        compute_cycles =
            macs / (spec_.tensor_macs_per_cycle *
                    static_cast<double>(active_sms) * eff_occ *
                    eff_warp * eff_shape);
    } else {
        double threads = static_cast<double>(units);
        double eff_thread = std::min(1.0, threads / 256.0);
        compute_cycles =
            macs / (spec_.scalar_macs_per_cycle *
                    static_cast<double>(active_sms) * eff_occ *
                    std::max(0.05, eff_thread));
    }
    // Unroll shaves loop overhead.
    double unroll = static_cast<double>(std::max<int64_t>(
        1, main.unroll));
    compute_cycles *=
        1.06 - 0.06 * std::min(1.0, std::log2(1.0 + unroll) / 4.0);

    // DRAM traffic from cache stage fills.
    double dram_bytes = 0.0;
    double shared_bytes_moved = 0.0;
    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        double traffic = static_cast<double>(stage.fill_trips) *
                         static_cast<double>(stage.tile_elements) *
                         static_cast<double>(stage.bytes_per_element);
        int ways = detail::bank_conflict_ways(
            spec_, stage.row_elements, stage.storage_align_pad,
            static_cast<int>(stage.bytes_per_element));
        double conflict = std::min(ways, 8);
        switch (stage.scope) {
          case MemScope::kShared: {
            // Global <-> shared movement: DRAM once, shared banks
            // once (with conflicts).
            double vec_eff =
                0.7 + 0.3 * std::min(1.0,
                                     static_cast<double>(
                                         stage.vector_len *
                                         stage.bytes_per_element) /
                                         16.0);
            dram_bytes += traffic / vec_eff;
            shared_bytes_moved += traffic * conflict;
            break;
          }
          case MemScope::kFragment:
          case MemScope::kRegister:
            // Shared <-> fragment movement.
            shared_bytes_moved += traffic * conflict;
            break;
          default:
            dram_bytes += traffic;
        }
        if (stage.role == StageRole::kCacheWrite &&
            stage.scope != MemScope::kShared &&
            stage.scope != MemScope::kFragment) {
            // Already charged to DRAM above.
        }
    }
    // Unstaged inputs stream from DRAM every iteration.
    dram_bytes +=
        static_cast<double>(program.streamed_input_bytes);

    double dram_cycles = dram_bytes / spec_.dram_bytes_per_cycle;
    double shared_cycles =
        shared_bytes_moved /
        (spec_.staging_bytes_per_cycle *
         static_cast<double>(active_sms));

    // Imperfect overlap of compute and memory pipelines.
    double bound = std::max({compute_cycles, dram_cycles,
                             shared_cycles});
    double total = bound + 0.15 * (compute_cycles + dram_cycles +
                                   shared_cycles - bound);

    // Wave quantization and launch overhead.
    int64_t waves = ceil_div(blocks, active_sms * resident);
    double overhead = static_cast<double>(waves) * 600.0;
    total += overhead;
    double ms = total / (spec_.clock_ghz * 1e9) * 1e3 +
                spec_.launch_overhead_us / 1e3;

    // Deterministic unmodeled residual (+-5%).
    ms *= 1.0 + 0.05 * detail::config_residual(program);

    Breakdown b;
    b.compute_cycles = compute_cycles;
    b.dram_cycles = dram_cycles;
    b.shared_cycles = shared_cycles;
    b.overhead_cycles = overhead;
    b.eff_occ = eff_occ;
    b.blocks = blocks;
    b.warps = warps;
    b.resident = resident;
    b.ms = ms;
    return b;
}

} // namespace

std::unique_ptr<DlaSimulator>
make_tensorcore_sim(const DlaSpec &spec)
{
    return std::make_unique<TensorCoreSim>(spec);
}

} // namespace heron::hw
