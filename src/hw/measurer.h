/**
 * @file
 * The DLA Measurer (paper §3): validates and "measures" generated
 * programs, averaging repeated runs, and accounts for the simulated
 * wall-clock cost of measurement (which dominates compilation time
 * in the paper's Table 10 / Fig. 14).
 *
 * Real measurement is flaky — boards reset, kernels hang, runs come
 * back as outliers — so the measurer owns the failure-handling hot
 * path: transient failures and timeouts are retried with exponential
 * backoff (accounted into simulated time), and repeated runs go
 * through median-based outlier rejection before averaging. The
 * per-measurement randomness is derived from (seed, measurement
 * index, attempt) rather than a sequential stream, so a tuning run
 * resumed from a journal reproduces the exact noise draws of an
 * uninterrupted run.
 */
#ifndef HERON_HW_MEASURER_H
#define HERON_HW_MEASURER_H

#include <memory>
#include <string>
#include <vector>

#include "hw/simulator.h"
#include "support/rng.h"

namespace heron::hw {

/** Why a measurement (or one attempt of it) failed. */
enum class MeasureFailure : uint8_t {
    kNone = 0,
    /** Program rejected by the DLA (compile/launch error). Final. */
    kInvalid,
    /** Board-level transient fault (reset, flaky link). Retryable. */
    kTransient,
    /** Run exceeded the configured timeout (hang). Retryable. */
    kTimeout,
    /**
     * Kernel wedged the worker: the run neither completed nor
     * honored the harness timeout, and the watchdog had to cancel
     * (or abandon) it. Final — a wedge reproduces, so retrying
     * inline would stall the whole round again.
     */
    kHung,
};

/** Name of a failure category ("none", "invalid", ...). */
const char *measure_failure_name(MeasureFailure failure);

/** Outcome of one measurement. */
struct MeasureResult {
    bool valid = false;
    std::string error;
    /** Failure category of the final attempt (kNone on success). */
    MeasureFailure failure = MeasureFailure::kNone;
    /** Attempts spent (1 unless transient faults forced retries). */
    int attempts = 1;
    /** Mean latency across kept repeats, milliseconds. */
    double latency_ms = 0.0;
    /** Achieved throughput in GFLOP/s (0 for invalid programs). */
    double gflops = 0.0;
};

/** Measurement configuration. */
struct MeasureConfig {
    /** Runs averaged per measurement. */
    int repeats = 3;
    /** Per-measurement harness overhead (compile+upload), seconds. */
    double harness_overhead_s = 0.15;
    /** Multiplicative run-to-run noise (std, fraction of latency). */
    double noise_std = 0.01;
    uint64_t seed = 1;

    /** Extra attempts after a transient failure or timeout. */
    int max_retries = 2;
    /** First retry backoff in simulated seconds; doubles per retry. */
    double retry_backoff_s = 0.05;
    /** Per-run timeout in milliseconds (0 disables hang detection). */
    double timeout_ms = 0.0;
    /**
     * Repeats slower than this multiple of the median repeat are
     * discarded before averaging (<= 0 disables rejection).
     */
    double outlier_threshold = 3.0;
};

/** Per-category measurement accounting. */
struct MeasureStats {
    /** Measurements performed (including journal replays). */
    int64_t measurements = 0;
    /** Programs rejected by the DLA (not retryable). */
    int64_t invalid = 0;
    /** Transient-fault attempts observed. */
    int64_t transient_faults = 0;
    /** Timed-out attempts observed. */
    int64_t timeouts = 0;
    /** Re-attempts performed after a retryable failure. */
    int64_t retries = 0;
    /** Measurements that stayed failed after all retries. */
    int64_t exhausted_retries = 0;
    /** Repeat runs discarded as outliers. */
    int64_t outliers_rejected = 0;
    /** Measurements restored from a journal instead of re-run. */
    int64_t replayed = 0;
    /** Runs that wedged their worker (watchdog cancel/abandon). */
    int64_t hung = 0;
};

/** Validates, times, and accounts for measurements on one DLA. */
class Measurer
{
  public:
    Measurer(const DlaSpec &spec, MeasureConfig config = {});
    virtual ~Measurer() = default;

    /**
     * Measure one program: validity + repeated timed runs, with
     * retry/backoff on transient failures and timeouts, and outlier
     * rejection across repeats.
     */
    MeasureResult measure(const schedule::ConcreteProgram &program);

    /**
     * measure() with an explicit measurement index instead of this
     * measurer's own running count. The measurement pool pre-assigns
     * indices from a master counter so a batch fanned across N
     * workers (each with its own Measurer) draws the exact noise
     * streams a serial run would — the determinism contract.
     */
    MeasureResult
    measure_indexed(const schedule::ConcreteProgram &program,
                    int64_t index);

    /**
     * Attach a cancellation token observed by long-running attempt
     * code (nullptr detaches). The token is polled, not owned; it
     * must outlive the measurements it supervises.
     */
    void set_cancel_token(const CancelToken *token)
    {
        cancel_token_ = token;
    }

    /** The underlying simulator. */
    const DlaSimulator &simulator() const { return *sim_; }

    /** The accelerator being measured. */
    const DlaSpec &spec() const { return sim_->spec(); }

    /** Measurements performed so far. */
    int64_t count() const { return stats_.measurements; }

    /** Invalid programs seen so far. */
    int64_t invalid_count() const { return stats_.invalid; }

    /** Per-category failure accounting. */
    const MeasureStats &stats() const { return stats_; }

    /**
     * Advance the measurement counter for a journal-replayed
     * measurement without running anything, keeping the derived
     * per-measurement noise streams aligned with an uninterrupted
     * run (checkpoint/resume determinism).
     */
    void note_replayed();

    /**
     * Total simulated wall-clock seconds spent measuring: repeats *
     * latency + per-measurement harness overhead + retry backoff,
     * the quantity Table 10 and Fig. 14 track.
     */
    double simulated_seconds() const { return simulated_seconds_; }

  protected:
    /** One measurement attempt before retry/aggregation policy. */
    struct Attempt {
        MeasureFailure failure = MeasureFailure::kNone;
        std::string error;
        /** Raw per-repeat latencies (valid attempts only). */
        std::vector<double> repeats_ms;
    };

    /**
     * Run one attempt, charging its simulated time. Overridden by
     * FaultyMeasurer to inject failures around the real attempt.
     */
    virtual Attempt attempt(const schedule::ConcreteProgram &program,
                            int attempt_index);

    /**
     * Deterministic RNG for the current measurement: a pure function
     * of (@p stream_seed, measurement index, @p attempt_index).
     */
    Rng per_attempt_rng(uint64_t stream_seed, int attempt_index) const;

    const MeasureConfig &config() const { return config_; }

    /** Active cancellation token (nullptr when unsupervised). */
    const CancelToken *cancel_token() const { return cancel_token_; }

    /** Account simulated measurement wall-clock time. */
    void charge_seconds(double seconds)
    {
        simulated_seconds_ += seconds;
    }

  private:
    std::unique_ptr<DlaSimulator> sim_;
    MeasureConfig config_;
    MeasureStats stats_;
    /** Index of the measurement currently in flight. */
    int64_t measure_index_ = 0;
    double simulated_seconds_ = 0.0;
    const CancelToken *cancel_token_ = nullptr;

    /** Aggregate a successful attempt's repeats into a result. */
    void aggregate(const Attempt &run,
                   const schedule::ConcreteProgram &program,
                   MeasureResult &result);
};

} // namespace heron::hw

#endif // HERON_HW_MEASURER_H
