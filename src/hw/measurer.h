/**
 * @file
 * The DLA Measurer (paper §3): validates and "measures" generated
 * programs, averaging repeated runs, and accounts for the simulated
 * wall-clock cost of measurement (which dominates compilation time
 * in the paper's Table 10 / Fig. 14).
 */
#ifndef HERON_HW_MEASURER_H
#define HERON_HW_MEASURER_H

#include <memory>
#include <string>

#include "hw/simulator.h"
#include "support/rng.h"

namespace heron::hw {

/** Outcome of one measurement. */
struct MeasureResult {
    bool valid = false;
    std::string error;
    /** Mean latency across repeats, milliseconds. */
    double latency_ms = 0.0;
    /** Achieved throughput in GFLOP/s (0 for invalid programs). */
    double gflops = 0.0;
};

/** Measurement configuration. */
struct MeasureConfig {
    /** Runs averaged per measurement. */
    int repeats = 3;
    /** Per-measurement harness overhead (compile+upload), seconds. */
    double harness_overhead_s = 0.15;
    /** Multiplicative run-to-run noise (std, fraction of latency). */
    double noise_std = 0.01;
    uint64_t seed = 1;
};

/** Validates, times, and accounts for measurements on one DLA. */
class Measurer
{
  public:
    Measurer(const DlaSpec &spec, MeasureConfig config = {});

    /** Measure one program (validity + repeated timed runs). */
    MeasureResult measure(const schedule::ConcreteProgram &program);

    /** The underlying simulator. */
    const DlaSimulator &simulator() const { return *sim_; }

    /** Measurements performed so far. */
    int64_t count() const { return count_; }

    /** Invalid programs seen so far. */
    int64_t invalid_count() const { return invalid_count_; }

    /**
     * Total simulated wall-clock seconds spent measuring: repeats *
     * latency + per-measurement harness overhead, the quantity
     * Table 10 and Fig. 14 track.
     */
    double simulated_seconds() const { return simulated_seconds_; }

  private:
    std::unique_ptr<DlaSimulator> sim_;
    MeasureConfig config_;
    Rng rng_;
    int64_t count_ = 0;
    int64_t invalid_count_ = 0;
    double simulated_seconds_ = 0.0;
};

} // namespace heron::hw

#endif // HERON_HW_MEASURER_H
