#include "hw/dla_spec.h"

#include "support/math_util.h"

namespace heron::hw {

const char *
dla_kind_name(DlaKind kind)
{
    switch (kind) {
      case DlaKind::kTensorCore: return "TensorCore";
      case DlaKind::kDlBoost: return "DLBoost";
      case DlaKind::kVta: return "VTA";
      case DlaKind::kTpu: return "TPU";
    }
    return "?";
}

double
DlaSpec::peak_gmacs() const
{
    return tensor_macs_per_cycle * num_units * clock_ghz;
}

uint64_t
DlaSpec::config_hash() const
{
    uint64_t h = hash_u64(static_cast<uint64_t>(kind));
    for (char c : name)
        h = hash_combine(h, static_cast<uint64_t>(
                                static_cast<unsigned char>(c)));
    auto mix_i64 = [&](int64_t v) {
        h = hash_combine(h, static_cast<uint64_t>(v));
    };
    auto mix_f64 = [&](double v) {
        // Bit pattern, not value: a spec edit that flips -0.0/0.0 or
        // nudges a bandwidth must change the hash.
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h = hash_combine(h, bits);
    };
    auto mix_vec = [&](const std::vector<int64_t> &values) {
        mix_i64(static_cast<int64_t>(values.size()));
        for (int64_t v : values)
            mix_i64(v);
    };
    mix_f64(clock_ghz);
    mix_i64(num_units);
    mix_vec(intrinsic_mnk_candidates);
    mix_i64(intrinsic_volume);
    mix_i64(fixed_m);
    mix_i64(fixed_n);
    mix_i64(fixed_k);
    mix_f64(tensor_macs_per_cycle);
    mix_f64(scalar_macs_per_cycle);
    mix_f64(dram_bytes_per_cycle);
    mix_f64(staging_bytes_per_cycle);
    mix_i64(shared_capacity);
    mix_i64(shared_per_unit);
    mix_i64(fragment_capacity);
    mix_i64(l1_capacity);
    mix_i64(input_buffer_capacity);
    mix_i64(weight_buffer_capacity);
    mix_i64(acc_buffer_capacity);
    mix_vec(vector_lengths);
    mix_i64(max_vector_bytes);
    mix_i64(warp_size);
    mix_i64(max_threads_per_block);
    mix_i64(max_warps_per_unit);
    mix_i64(num_banks);
    mix_f64(launch_overhead_us);
    return h;
}

std::vector<schedule::MemScope>
DlaSpec::cache_scopes() const
{
    using schedule::MemScope;
    switch (kind) {
      case DlaKind::kTensorCore:
        return {MemScope::kShared, MemScope::kFragment};
      case DlaKind::kDlBoost:
        return {MemScope::kL2, MemScope::kL1};
      case DlaKind::kVta:
      case DlaKind::kTpu:
        return {MemScope::kInputBuffer};
    }
    return {};
}

DlaSpec
DlaSpec::v100()
{
    DlaSpec spec;
    spec.kind = DlaKind::kTensorCore;
    spec.name = "V100";
    spec.clock_ghz = 1.37;
    spec.num_units = 80;
    spec.intrinsic_mnk_candidates = {8, 16, 32};
    spec.intrinsic_volume = 4096;
    // 8 TensorCores/SM x 64 MACs/cycle = 512 MACs/cycle/SM
    // => 80 * 512 * 1.37e9 * 2 ops ~= 112 TFLOPS.
    spec.tensor_macs_per_cycle = 512;
    // CUDA-core fp16x2 path: 64 fp32 lanes * 2 = 128 MACs/cycle/SM.
    spec.scalar_macs_per_cycle = 128;
    // 900 GB/s / 1.37 GHz ~= 657 B/cycle.
    spec.dram_bytes_per_cycle = 657;
    // ~128 B/cycle/SM shared bandwidth.
    spec.staging_bytes_per_cycle = 128;
    spec.shared_capacity = 48 * 1024;
    spec.shared_per_unit = 96 * 1024;
    spec.fragment_capacity = 64 * 1024;
    spec.launch_overhead_us = 5.0;
    return spec;
}

DlaSpec
DlaSpec::t4()
{
    DlaSpec spec = v100();
    spec.name = "T4";
    spec.clock_ghz = 1.59;
    spec.num_units = 40;
    // 65 TFLOPS fp16 TC peak => 65e12/2/40/1.59e9 ~= 511.
    spec.tensor_macs_per_cycle = 512;
    spec.scalar_macs_per_cycle = 128;
    // 320 GB/s.
    spec.dram_bytes_per_cycle = 201;
    spec.shared_capacity = 48 * 1024;
    spec.shared_per_unit = 64 * 1024;
    return spec;
}

DlaSpec
DlaSpec::a100()
{
    DlaSpec spec = v100();
    spec.name = "A100";
    spec.clock_ghz = 1.41;
    spec.num_units = 108;
    // 312 TFLOPS fp16 => 312e12/2/108/1.41e9 ~= 1024 MACs/cycle/SM.
    spec.tensor_macs_per_cycle = 1024;
    spec.scalar_macs_per_cycle = 256;
    // 1555 GB/s.
    spec.dram_bytes_per_cycle = 1103;
    spec.staging_bytes_per_cycle = 256;
    spec.shared_capacity = 48 * 1024;
    spec.shared_per_unit = 164 * 1024;
    return spec;
}

DlaSpec
DlaSpec::dlboost()
{
    DlaSpec spec;
    spec.kind = DlaKind::kDlBoost;
    spec.name = "DLBoost";
    spec.clock_ghz = 2.6;
    spec.num_units = 18;
    // AVX512-VNNI: VPDPBUSD on 2 ports = 2 * 64 int8 MACs/cycle.
    spec.fixed_m = 1;
    spec.fixed_n = 16;
    spec.fixed_k = 4;
    spec.tensor_macs_per_cycle = 128;
    // fp32 AVX512 FMA fallback: 2 * 16 = 32 MACs/cycle.
    spec.scalar_macs_per_cycle = 32;
    // ~120 GB/s six-channel DDR4 => 46 B/cycle.
    spec.dram_bytes_per_cycle = 46;
    // L2 bandwidth ~64 B/cycle/core.
    spec.staging_bytes_per_cycle = 64;
    // L2 tile working-set budget per core.
    spec.shared_capacity = 1024 * 1024;
    spec.shared_per_unit = 1024 * 1024;
    spec.l1_capacity = 32 * 1024;
    spec.fragment_capacity = 2 * 1024; // accumulation registers
    spec.vector_lengths = {1, 2, 4, 8, 16};
    spec.max_vector_bytes = 64;
    spec.launch_overhead_us = 2.0;
    return spec;
}

DlaSpec
DlaSpec::vta()
{
    DlaSpec spec;
    spec.kind = DlaKind::kVta;
    spec.name = "VTA";
    spec.clock_ghz = 0.1;
    spec.num_units = 1;
    spec.fixed_m = 1;
    spec.fixed_n = 16;
    spec.fixed_k = 16;
    // 256 PEs = one 1x16x16 GEMM per cycle.
    spec.tensor_macs_per_cycle = 256;
    spec.scalar_macs_per_cycle = 0; // no scalar fallback
    // ~1 GB/s DDR on PYNQ => 10 B/cycle at 100 MHz.
    spec.dram_bytes_per_cycle = 10;
    spec.staging_bytes_per_cycle = 64;
    spec.input_buffer_capacity = 32 * 1024;
    spec.weight_buffer_capacity = 256 * 1024;
    spec.acc_buffer_capacity = 128 * 1024;
    spec.vector_lengths = {1, 2, 4, 8, 16};
    spec.max_vector_bytes = 16;
    spec.launch_overhead_us = 20.0;
    return spec;
}

DlaSpec
DlaSpec::tpu()
{
    DlaSpec spec;
    spec.kind = DlaKind::kTpu;
    spec.name = "TPU";
    spec.clock_ghz = 0.7;
    spec.num_units = 1;
    // One 256x256 systolic matrix unit consuming 1x256x256 GEMM
    // tiles per cycle once the pipeline is full.
    spec.fixed_m = 1;
    spec.fixed_n = 256;
    spec.fixed_k = 256;
    spec.tensor_macs_per_cycle = 256.0 * 256.0;
    spec.scalar_macs_per_cycle = 0; // no scalar fallback
    // ~34 GB/s DDR3 on TPUv1 => ~49 B/cycle.
    spec.dram_bytes_per_cycle = 49;
    spec.staging_bytes_per_cycle = 1024;
    // Unified buffer for activations (paper: m*256 <= 4M) and a
    // dedicated accumulator memory.
    spec.input_buffer_capacity = 4 * 1024 * 1024;
    spec.weight_buffer_capacity = 64 * 1024 * 1024; // weight FIFO+DRAM staging
    spec.acc_buffer_capacity = 4 * 1024 * 1024;
    spec.vector_lengths = {1, 2, 4, 8, 16};
    spec.max_vector_bytes = 64;
    spec.launch_overhead_us = 10.0;
    return spec;
}

} // namespace heron::hw
