/**
 * @file
 * Analytic VTA (decoupled access-execute FPGA accelerator) model.
 *
 * VTA executes int8 GEMM tiles through explicit input/weight/
 * accumulator SPM buffers with a load-compute-store pipeline. The
 * paper highlights two VTA peculiarities Heron must constrain:
 * strict buffer capacities, and a minimum write-back gap to the
 * same accumulator address ("2 <= access_cycle"), which forbids
 * tilings whose innermost serial reduce loop has length 1.
 */
#include <algorithm>
#include <cmath>
#include <sstream>

#include "hw/simulator.h"
#include "support/logging.h"
#include "support/math_util.h"

namespace heron::hw {

namespace {

using schedule::ConcreteProgram;
using schedule::ConcreteStage;
using schedule::LoopRole;
using schedule::MemScope;
using schedule::StageRole;

class VtaSim : public DlaSimulator
{
  public:
    explicit VtaSim(const DlaSpec &spec) : spec_(spec) {}

    const DlaSpec &spec() const override { return spec_; }

    std::string check(const ConcreteProgram &program) const override;
    double latency_ms(const ConcreteProgram &program) const override;

  private:
    DlaSpec spec_;

    /**
     * Cycles between consecutive writes to the same accumulator
     * address: the length of the innermost non-intrinsic level of
     * the innermost (last) reduce axis of the main stage.
     */
    int64_t
    acc_write_gap(const ConcreteStage &main) const
    {
        for (int a = static_cast<int>(main.tile.size()) - 1; a >= 0;
             --a) {
            if (!main.axis_reduce[static_cast<size_t>(a)])
                continue;
            const auto &levels = main.tile[static_cast<size_t>(a)];
            const auto &roles = main.roles[static_cast<size_t>(a)];
            for (int l = static_cast<int>(levels.size()) - 1; l >= 0;
                 --l) {
                if (roles[static_cast<size_t>(l)] ==
                    LoopRole::kIntrinsic)
                    continue;
                return levels[static_cast<size_t>(l)];
            }
            return 1;
        }
        return 1;
    }
};

std::string
VtaSim::check(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();
    std::ostringstream err;

    if (main.intrinsic_m == 0)
        return "VTA has no scalar fallback; compute must be tensorized";
    if (main.intrinsic_m != spec_.fixed_m ||
        main.intrinsic_n != spec_.fixed_n ||
        main.intrinsic_k != spec_.fixed_k) {
        err << "VTA GEMM core requires " << spec_.fixed_m << "x"
            << spec_.fixed_n << "x" << spec_.fixed_k << ", got "
            << main.intrinsic_m << "x" << main.intrinsic_n << "x"
            << main.intrinsic_k;
        return err.str();
    }
    if (program.dtype != ir::DataType::kInt8)
        return "VTA requires int8 inputs";

    int64_t input = program.scope_bytes(MemScope::kInputBuffer);
    if (input > spec_.input_buffer_capacity) {
        err << "input buffer " << input << "B exceeds "
            << spec_.input_buffer_capacity << "B";
        return err.str();
    }
    int64_t weight = program.scope_bytes(MemScope::kWeightBuffer);
    if (weight > spec_.weight_buffer_capacity) {
        err << "weight buffer " << weight << "B exceeds "
            << spec_.weight_buffer_capacity << "B";
        return err.str();
    }
    int64_t acc = program.scope_bytes(MemScope::kAccBuffer);
    if (acc > spec_.acc_buffer_capacity) {
        err << "accumulator buffer " << acc << "B exceeds "
            << spec_.acc_buffer_capacity << "B";
        return err.str();
    }

    if (acc_write_gap(main) < 2)
        return "accumulator write hazard: access cycle < 2 "
               "(innermost reduce loop too short)";
    return "";
}

double
VtaSim::latency_ms(const ConcreteProgram &program) const
{
    const ConcreteStage &main = program.main_stage();

    double macs = static_cast<double>(program.total_ops) / 2.0;
    double compute_cycles = macs / spec_.tensor_macs_per_cycle;

    double load_bytes = 0.0;
    double store_bytes = 0.0;
    int64_t tiles = 1;
    for (const auto &stage : program.stages) {
        if (stage.role == StageRole::kMain)
            continue;
        double traffic = static_cast<double>(stage.fill_trips) *
                         static_cast<double>(stage.tile_elements) *
                         static_cast<double>(stage.bytes_per_element);
        if (stage.role == StageRole::kCacheRead) {
            load_bytes += traffic;
            tiles = std::max(tiles, stage.fill_trips);
        } else {
            store_bytes += traffic;
        }
    }
    load_bytes +=
        static_cast<double>(program.streamed_input_bytes);

    double load_cycles = load_bytes / spec_.dram_bytes_per_cycle;
    double store_cycles = store_bytes / spec_.dram_bytes_per_cycle;

    // Load/compute/store overlap: double buffering works when both
    // ping-pong tiles fit (enforced capacities already assume single
    // buffers; model partial overlap improving with tile count).
    double overlap =
        tiles >= 4 ? 0.85 : (tiles >= 2 ? 0.6 : 0.0);
    double bound =
        std::max({load_cycles, compute_cycles, store_cycles});
    double sum = load_cycles + compute_cycles + store_cycles;
    double total = bound + (1.0 - overlap) * (sum - bound);

    // Per-tile instruction/synchronization overhead.
    total += static_cast<double>(tiles) * 64.0;

    // Deep serial reduce chains inside a tile pipeline better.
    int64_t gap = acc_write_gap(main);
    total *= 1.0 + 0.15 / static_cast<double>(std::max<int64_t>(1, gap));

    double ms = total / (spec_.clock_ghz * 1e9) * 1e3 +
                spec_.launch_overhead_us / 1e3;
    ms *= 1.0 + 0.05 * detail::config_residual(program);
    return ms;
}

} // namespace

std::unique_ptr<DlaSimulator>
make_vta_sim(const DlaSpec &spec)
{
    return std::make_unique<VtaSim>(spec);
}

} // namespace heron::hw
