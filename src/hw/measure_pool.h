/**
 * @file
 * Supervised parallel measurement pool.
 *
 * Real DLA tuning measures a round's candidates on a small farm of
 * boards; a single wedged kernel must not stall the whole round. The
 * pool fans a batch of candidates across N worker threads, each
 * supervised by a watchdog that enforces a per-candidate wall-clock
 * deadline through cooperative cancellation (the measurement path
 * polls a CancelToken). A worker that ignores cancellation past a
 * grace period is *abandoned*: its slot resolves to a fabricated
 * kHung result and a replacement worker is spawned. When attrition
 * exceeds a threshold the pool degrades to supervised serial
 * execution instead of aborting the run.
 *
 * Determinism contract: measurement indices are pre-assigned from a
 * master counter before dispatch, and per-task stat/time deltas are
 * merged in task order, so results, MeasureStats, simulated seconds,
 * and watchdog-fire counts are bit-identical regardless of worker
 * count. Only wall-clock-domain telemetry (abandoned-worker count,
 * degraded flag) may differ between worker counts.
 */
#ifndef HERON_HW_MEASURE_POOL_H
#define HERON_HW_MEASURE_POOL_H

#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "hw/fault_injection.h"
#include "hw/measurer.h"

namespace heron::hw {

/** Measurement-pool configuration. */
struct PoolConfig {
    /** Worker threads (<= 1 runs supervised-serial, no threads). */
    int workers = 1;
    /** Per-candidate wall-clock deadline, milliseconds. */
    double deadline_ms = 2000.0;
    /**
     * Extra wall-clock grace after cancellation before the worker is
     * declared wedged and abandoned, milliseconds.
     */
    double grace_ms = 100.0;
    /**
     * Abandoned workers tolerated before the pool stops spawning
     * replacements and degrades to serial execution for the rest of
     * the run.
     */
    int max_abandoned = 2;
};

/** One pre-indexed measurement request. */
struct MeasureTask {
    const schedule::ConcreteProgram *program = nullptr;
    /** Pre-assigned measurement index (from reserve_index()). */
    int64_t index = 0;
};

/**
 * Fans measurement batches across supervised workers. One pool
 * serves a whole tuning run; batches are submitted round by round.
 */
class MeasurePool
{
  public:
    MeasurePool(const DlaSpec &spec, MeasureConfig config,
                FaultConfig faults, PoolConfig pool);
    ~MeasurePool();

    MeasurePool(const MeasurePool &) = delete;
    MeasurePool &operator=(const MeasurePool &) = delete;

    /**
     * Reserve the next measurement index from the master counter.
     * Call in candidate order *before* building the batch so replays
     * and live measurements interleave exactly as a serial run.
     */
    int64_t reserve_index();

    /** Account a journal-replayed measurement (advances the index). */
    void note_replayed();

    /**
     * Measure every task, returning results in task order. Blocks
     * until each slot is resolved (measured, cancelled, or
     * abandoned). Safe to call repeatedly.
     */
    std::vector<MeasureResult>
    measure_batch(const std::vector<MeasureTask> &tasks);

    /** Merged per-category accounting across all workers. */
    const MeasureStats &stats() const { return stats_; }

    /** Merged simulated measurement wall-clock seconds. */
    double simulated_seconds() const { return simulated_seconds_; }

    /**
     * Tasks resolved by the watchdog (cooperative cancel or
     * abandonment). Deterministic across worker counts.
     */
    int64_t watchdog_fires() const { return watchdog_fires_; }

    /** Workers declared wedged and abandoned (wall-clock domain). */
    int64_t abandoned_workers() const { return abandoned_; }

    /** True once attrition forced supervised-serial execution. */
    bool degraded() const { return degraded_; }

    const DlaSpec &spec() const { return spec_; }

  private:
    struct BatchState;
    struct WorkerHandle;

    /** Run @p tasks on the calling thread (serial / degraded path). */
    void run_serial(const std::vector<MeasureTask> &tasks,
                    std::vector<MeasureResult> &results);

    /** Run @p tasks across worker threads with watchdog supervision. */
    void run_parallel(const std::vector<MeasureTask> &tasks,
                      std::vector<MeasureResult> &results);

    /** Execute one claimed slot inline on the supervisor thread. */
    void run_slot_inline(BatchState &state, size_t slot_index);

    /** Spawn one worker thread pulling slots from @p state. */
    void spawn_worker(std::shared_ptr<BatchState> state);

    /** Join finished workers; park still-stalled ones as zombies. */
    void reap_workers(bool final_join);

    /** Fold one resolved slot into the pool-level accounting. */
    void merge_slot_delta(const MeasureStats &delta, double seconds,
                          const MeasureResult &result);

    const DlaSpec &spec_;
    MeasureConfig config_;
    FaultConfig faults_;
    PoolConfig pool_;

    /** Lazily-created measurer for serial/degraded execution. */
    std::unique_ptr<Measurer> serial_measurer_;

    MeasureStats stats_;
    double simulated_seconds_ = 0.0;
    int64_t watchdog_fires_ = 0;
    int64_t abandoned_ = 0;
    bool degraded_ = false;

    /** Live worker threads for the current batch. */
    std::vector<WorkerHandle> workers_;
    /** Abandoned threads still stalling; joined on destruction. */
    std::vector<WorkerHandle> zombies_;
};

} // namespace heron::hw

#endif // HERON_HW_MEASURE_POOL_H
