/**
 * @file
 * Fault injection for the measurement path.
 *
 * Real DLA measurement fails in characteristic ways: boards reset
 * mid-run (transient), kernels hang until the harness kills them
 * (timeout), runs come back an order of magnitude slow (outlier),
 * and launches occasionally report a spurious failure for a program
 * that is actually fine. FaultyMeasurer injects each category with a
 * configurable rate from a seeded, deterministic stream, so every
 * robustness behavior — retry, backoff, outlier rejection, graceful
 * degradation, checkpoint/resume — is testable offline and
 * reproducible bit-for-bit.
 */
#ifndef HERON_HW_FAULT_INJECTION_H
#define HERON_HW_FAULT_INJECTION_H

#include <memory>

#include "hw/measurer.h"

namespace heron::hw {

/** Injection rates (per attempt / per repeat), all in [0, 1]. */
struct FaultConfig {
    /** Board-level transient failure per attempt (retryable). */
    double transient_rate = 0.0;
    /** Kernel hang per attempt (killed at the timeout; retryable). */
    double timeout_rate = 0.0;
    /** Latency outlier per repeat run (slow but completes). */
    double outlier_rate = 0.0;
    /** Spurious launch failure per attempt (not retryable). */
    double spurious_invalid_rate = 0.0;
    /**
     * Kernel wedge per measurement (first attempt only; final).
     * Unlike timeout_rate, the run does not honor the harness
     * timeout: it blocks until a cancel token fires (cooperative) or
     * — with hung_ignores_cancel — until the watchdog abandons the
     * worker outright.
     */
    double hung_rate = 0.0;

    /** Injected outlier latency multiplier. */
    double outlier_scale = 10.0;
    /**
     * Simulated seconds lost to a hang when no measurement timeout
     * is configured (the harness blocks until a watchdog fires).
     */
    double hang_s = 1.0;
    /**
     * When true, an injected wedge also ignores the cancel token,
     * stalling the worker thread for hung_stall_ms of *real* time —
     * the worst case the pool's abandon-and-replace path exists for.
     */
    bool hung_ignores_cancel = false;
    /** Real milliseconds a non-cooperative wedge stalls its worker. */
    double hung_stall_ms = 200.0;
    /** Seed of the fault stream (independent of measurement noise). */
    uint64_t seed = 0x5eed;

    /** True when any injection rate is non-zero. */
    bool any() const
    {
        return transient_rate > 0.0 || timeout_rate > 0.0 ||
               outlier_rate > 0.0 || spurious_invalid_rate > 0.0 ||
               hung_rate > 0.0;
    }
};

/**
 * Decorator over Measurer that injects faults around the real
 * attempt. Fault draws are a pure function of (fault seed,
 * measurement index, attempt index), so a fixed seed yields an
 * identical fault schedule regardless of what the search does in
 * between — and a journal-resumed run sees the same faults as an
 * uninterrupted one.
 */
class FaultyMeasurer : public Measurer
{
  public:
    FaultyMeasurer(const DlaSpec &spec, MeasureConfig config,
                   FaultConfig faults);

    const FaultConfig &faults() const { return faults_; }

    /** Faults injected so far (all categories). */
    int64_t injected_count() const { return injected_; }

  protected:
    Attempt attempt(const schedule::ConcreteProgram &program,
                    int attempt_index) override;

  private:
    FaultConfig faults_;
    int64_t injected_ = 0;
};

/**
 * Measurer factory: a FaultyMeasurer when any fault rate is
 * non-zero, a plain Measurer otherwise.
 */
std::unique_ptr<Measurer> make_measurer(const DlaSpec &spec,
                                        MeasureConfig config = {},
                                        FaultConfig faults = {});

/**
 * The MeasureResult a wedged measurement resolves to. The pool
 * fabricates this when it abandons a worker, and it must match the
 * cooperative-cancel path bit-for-bit so journals are identical
 * whichever way the wedge was detected.
 */
MeasureResult hung_result();

/**
 * Simulated seconds one wedged measurement charges (harness overhead
 * plus the watchdog-bounded hang), matching FaultyMeasurer's
 * cooperative path so abandoned-worker accounting stays identical.
 */
double hung_charge_s(const MeasureConfig &config,
                     const FaultConfig &faults);

} // namespace heron::hw

#endif // HERON_HW_FAULT_INJECTION_H
