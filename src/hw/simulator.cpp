#include "hw/simulator.h"

#include "support/logging.h"
#include "support/math_util.h"

namespace heron::hw {

// Defined in the per-DLA translation units.
std::unique_ptr<DlaSimulator> make_tensorcore_sim(const DlaSpec &spec);
std::unique_ptr<DlaSimulator> make_dlboost_sim(const DlaSpec &spec);
std::unique_ptr<DlaSimulator> make_vta_sim(const DlaSpec &spec);
std::unique_ptr<DlaSimulator> make_tpu_sim(const DlaSpec &spec);

std::unique_ptr<DlaSimulator>
make_simulator(const DlaSpec &spec)
{
    switch (spec.kind) {
      case DlaKind::kTensorCore: return make_tensorcore_sim(spec);
      case DlaKind::kDlBoost: return make_dlboost_sim(spec);
      case DlaKind::kVta: return make_vta_sim(spec);
      case DlaKind::kTpu: return make_tpu_sim(spec);
    }
    HERON_FATAL << "unknown DLA kind";
    return nullptr;
}

namespace detail {

uint64_t
program_hash(const schedule::ConcreteProgram &program)
{
    uint64_t h = hash_u64(static_cast<uint64_t>(program.total_ops));
    for (const auto &s : program.stages) {
        h = hash_combine(h, std::hash<std::string>{}(s.name));
        for (size_t a = 0; a < s.tile.size(); ++a)
            for (size_t l = 0; l < s.tile[a].size(); ++l)
                h = hash_combine(
                    h, static_cast<uint64_t>(s.tile[a][l]) * 31 +
                           static_cast<uint64_t>(s.roles[a][l]));
        h = hash_combine(h, static_cast<uint64_t>(s.attach_depth + 7));
        h = hash_combine(h, static_cast<uint64_t>(s.vector_len));
        h = hash_combine(h, static_cast<uint64_t>(s.unroll));
        h = hash_combine(h,
                         static_cast<uint64_t>(s.storage_align_pad));
        h = hash_combine(h, static_cast<uint64_t>(s.intrinsic_m * 37 +
                                                  s.intrinsic_n * 5 +
                                                  s.intrinsic_k));
    }
    return h;
}

double
config_residual(const schedule::ConcreteProgram &program)
{
    uint64_t h = hash_u64(program_hash(program));
    // Map to [-1, 1].
    return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

int
bank_conflict_ways(const DlaSpec &spec, int64_t row_elements,
                   int64_t pad_elements, int elem_bytes)
{
    if (row_elements <= 0)
        return 1;
    // Words (4-byte bank width) per row including padding.
    int64_t row_bytes = (row_elements + pad_elements) * elem_bytes;
    int64_t stride_words = std::max<int64_t>(1, row_bytes / 4);
    int64_t g = gcd64(stride_words, spec.num_banks);
    // A warp walking down a column hits num_banks/g distinct banks;
    // ways of conflict is g (capped by the warp size).
    int ways = static_cast<int>(g);
    return std::max(1, std::min(ways, spec.warp_size));
}

} // namespace detail

} // namespace heron::hw
